//! Hyper-parameter search: random search plus a coarse-to-fine refinement
//! loop standing in for the paper's Bayesian optimisation (§5.2).
//!
//! Each candidate configuration is scored by stratified k-fold cross-validated
//! ROC AUC, matching the paper's use of cross-validation to guard against
//! over-fitting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::gbdt::{GbdtModel, GbdtParams};
use crate::metrics::roc_auc;
use crate::split::stratified_kfold;

/// An inclusive range for a continuous hyper-parameter.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParamRange {
    pub min: f64,
    pub max: f64,
}

impl ParamRange {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        if (self.max - self.min).abs() < f64::EPSILON {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }

    fn shrink_around(&self, center: f64, factor: f64) -> ParamRange {
        let half = (self.max - self.min) * factor / 2.0;
        ParamRange {
            min: (center - half).max(self.min),
            max: (center + half).min(self.max),
        }
    }
}

/// The search space over GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchSpace {
    pub learning_rate: ParamRange,
    pub max_depth: (usize, usize),
    pub lambda: ParamRange,
    pub gamma: ParamRange,
    pub subsample: ParamRange,
    pub colsample_bytree: ParamRange,
    pub n_estimators: (usize, usize),
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            learning_rate: ParamRange {
                min: 0.03,
                max: 0.4,
            },
            max_depth: (3, 8),
            lambda: ParamRange { min: 0.5, max: 5.0 },
            gamma: ParamRange { min: 0.0, max: 1.0 },
            subsample: ParamRange { min: 0.6, max: 1.0 },
            colsample_bytree: ParamRange { min: 0.5, max: 1.0 },
            n_estimators: (30, 150),
        }
    }
}

impl SearchSpace {
    fn sample(&self, rng: &mut StdRng, seed: u64) -> GbdtParams {
        GbdtParams {
            learning_rate: self.learning_rate.sample(rng),
            max_depth: rng.gen_range(self.max_depth.0..=self.max_depth.1),
            lambda: self.lambda.sample(rng),
            gamma: self.gamma.sample(rng),
            subsample: self.subsample.sample(rng),
            colsample_bytree: self.colsample_bytree.sample(rng),
            n_estimators: rng.gen_range(self.n_estimators.0..=self.n_estimators.1),
            seed,
            ..GbdtParams::default()
        }
    }

    /// A narrowed space centred on a known-good configuration (the refinement
    /// step of the coarse-to-fine search).
    pub fn refined_around(&self, best: &GbdtParams, factor: f64) -> SearchSpace {
        let depth_half =
            (((self.max_depth.1 - self.max_depth.0) as f64 * factor / 2.0).ceil() as usize).max(1);
        let est_half = (((self.n_estimators.1 - self.n_estimators.0) as f64 * factor / 2.0).ceil()
            as usize)
            .max(5);
        SearchSpace {
            learning_rate: self.learning_rate.shrink_around(best.learning_rate, factor),
            max_depth: (
                best.max_depth
                    .saturating_sub(depth_half)
                    .max(self.max_depth.0),
                (best.max_depth + depth_half).min(self.max_depth.1),
            ),
            lambda: self.lambda.shrink_around(best.lambda, factor),
            gamma: self.gamma.shrink_around(best.gamma, factor),
            subsample: self.subsample.shrink_around(best.subsample, factor),
            colsample_bytree: self
                .colsample_bytree
                .shrink_around(best.colsample_bytree, factor),
            n_estimators: (
                best.n_estimators
                    .saturating_sub(est_half)
                    .max(self.n_estimators.0),
                (best.n_estimators + est_half).min(self.n_estimators.1),
            ),
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialResult {
    pub params: GbdtParams,
    /// Mean cross-validated ROC AUC.
    pub score: f64,
}

/// Mean k-fold cross-validated AUC of one configuration.
pub fn cross_validated_auc(data: &Dataset, params: GbdtParams, folds: usize, seed: u64) -> f64 {
    let splits = stratified_kfold(data.labels(), folds, seed);
    let mut total = 0.0;
    for (train_idx, val_idx) in &splits {
        let train = data.subset(train_idx);
        let val = data.subset(val_idx);
        let model = GbdtModel::fit(&train, params);
        let probs = model.predict_dataset(&val);
        total += roc_auc(val.labels(), &probs);
    }
    total / splits.len() as f64
}

/// Pure random search: `n_trials` samples of the space, each scored by k-fold
/// cross validation. Returns trials sorted best-first.
pub fn random_search(
    data: &Dataset,
    space: &SearchSpace,
    n_trials: usize,
    folds: usize,
    seed: u64,
) -> Vec<TrialResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trials: Vec<TrialResult> = (0..n_trials)
        .map(|t| {
            let params = space.sample(&mut rng, seed.wrapping_add(t as u64));
            let score = cross_validated_auc(data, params, folds, seed);
            TrialResult { params, score }
        })
        .collect();
    trials.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    trials
}

/// Coarse-to-fine search: a random exploration phase followed by a refinement
/// phase sampling a shrunken space around the incumbent. This plays the role
/// of the paper's Bayesian optimisation at a fraction of the implementation
/// cost; the exploitation step serves the same purpose as the acquisition
/// function concentrating samples near promising regions.
pub fn refine_search(
    data: &Dataset,
    space: &SearchSpace,
    n_explore: usize,
    n_refine: usize,
    folds: usize,
    seed: u64,
) -> TrialResult {
    let explored = random_search(data, space, n_explore.max(1), folds, seed);
    let mut best = explored
        .into_iter()
        .next()
        .expect("at least one exploration trial");
    if n_refine == 0 {
        return best;
    }
    let refined_space = space.refined_around(&best.params, 0.3);
    let refined = random_search(
        data,
        &refined_space,
        n_refine,
        folds,
        seed.wrapping_add(1000),
    );
    if let Some(top) = refined.into_iter().next() {
        if top.score > best.score {
            best = top;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn small_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            d.push_row(&[a, b], if a + 0.3 * b > 0.6 { 1.0 } else { 0.0 });
        }
        d
    }

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            n_estimators: (5, 15),
            max_depth: (2, 3),
            ..SearchSpace::default()
        }
    }

    #[test]
    fn cross_validation_scores_reasonably() {
        let d = small_data(300, 1);
        let auc = cross_validated_auc(
            &d,
            GbdtParams {
                n_estimators: 15,
                max_depth: 3,
                ..GbdtParams::default()
            },
            3,
            7,
        );
        assert!(auc > 0.8, "cv auc {auc}");
        assert!(auc <= 1.0);
    }

    #[test]
    fn random_search_returns_sorted_trials() {
        let d = small_data(200, 2);
        let trials = random_search(&d, &tiny_space(), 3, 2, 5);
        assert_eq!(trials.len(), 3);
        for w in trials.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn refine_search_at_least_matches_exploration() {
        let d = small_data(200, 3);
        let space = tiny_space();
        let explore_only = random_search(&d, &space, 2, 2, 11)[0].score;
        let refined = refine_search(&d, &space, 2, 2, 2, 11);
        assert!(refined.score >= explore_only - 1e-9);
    }

    #[test]
    fn refined_space_is_within_original_bounds() {
        let space = SearchSpace::default();
        let best = GbdtParams {
            learning_rate: 0.2,
            max_depth: 5,
            lambda: 2.0,
            ..GbdtParams::default()
        };
        let refined = space.refined_around(&best, 0.3);
        assert!(refined.learning_rate.min >= space.learning_rate.min);
        assert!(refined.learning_rate.max <= space.learning_rate.max);
        assert!(refined.max_depth.0 >= space.max_depth.0);
        assert!(refined.max_depth.1 <= space.max_depth.1);
        assert!(refined.learning_rate.min <= 0.2 && refined.learning_rate.max >= 0.2);
    }

    #[test]
    fn degenerate_range_samples_constant() {
        let r = ParamRange { min: 0.5, max: 0.5 };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.sample(&mut rng), 0.5);
    }
}
