//! Crowdsourced speed-test substrate: Ookla open-data tiles, MLab NDT7 tests,
//! provider attribution and per-hex aggregation (§4.2 of the paper).
//!
//! The pipeline never uses measured throughput to judge a provider's claim —
//! speed tests only serve as *presence* evidence. Two datasets are modelled:
//!
//! * **Ookla Open Data** ([`ookla`]) — quarterly aggregates keyed by ~500 m
//!   Web-Mercator quadkey tiles: test count, unique device count and average
//!   throughput/latency, with no provider attribution. Re-projected onto the
//!   hex grid (Appendix D) these drive the per-hex *service coverage score*
//!   (unique devices per BSL).
//! * **MLab NDT7** ([`mlab`]) — individual tests carrying the client ASN and
//!   an IP-geolocation centre + accuracy radius. Combined with the
//!   provider→ASN mapping and the provider's claimed footprint, each test is
//!   localised to the hexes it could have been run from ([`attribution`]).

pub mod attribution;
pub mod coverage;
pub mod mlab;
pub mod ookla;

pub use attribution::{attribute_mlab_tests, candidate_hexes, MlabAttributor, ProviderHexTests};
pub use coverage::{coverage_scores, CoverageScore};
pub use mlab::{MlabDataset, MlabTest, MAX_ACCURACY_RADIUS_KM};
pub use ookla::{aggregate_records_into, OoklaDataset, OoklaHexAggregate, OoklaTileRecord};
