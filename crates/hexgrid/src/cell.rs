//! 64-bit hexagonal cell indices.

use geoprim::{LatLng, Polygon};
use serde::{Deserialize, Serialize};

use crate::grid::{
    axial_to_plane, from_plane_km, plane_to_axial, to_plane_km, Axial, Resolution, HEX_DIRECTIONS,
};

/// Number of bits used for each axial coordinate in the packed index.
const COORD_BITS: u64 = 29;
/// Bias added to axial coordinates so they pack as unsigned values.
const COORD_BIAS: i64 = 1 << (COORD_BITS - 1);
const COORD_MASK: u64 = (1 << COORD_BITS) - 1;
/// Bit position of the 5-bit resolution field (values above 15 are invalid,
/// which lets [`HexCell::from_index`] reject corrupted indices).
const RES_SHIFT: u64 = 2 * COORD_BITS;

/// A cell of the hexagonal discrete global grid, identified by a packed 64-bit
/// index (4 bits of resolution, 30 bits per axial coordinate).
///
/// This is the unit of spatial analysis in the whole pipeline: the public NBM
/// reports provider claims per resolution-8 cell, challenges are applied per
/// cell, and the model's observations are `(provider, technology, cell)`
/// triples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HexCell(u64);

impl HexCell {
    /// The cell containing geographic point `p` at resolution `res`.
    pub fn containing(p: &LatLng, res: Resolution) -> Self {
        let (x, y) = to_plane_km(p);
        let axial = plane_to_axial(x, y, res);
        Self::from_parts(res, axial)
    }

    fn from_parts(res: Resolution, a: Axial) -> Self {
        let q = (a.q + COORD_BIAS) as u64 & COORD_MASK;
        let r = (a.r + COORD_BIAS) as u64 & COORD_MASK;
        HexCell(((res.level() as u64) << RES_SHIFT) | (q << COORD_BITS) | r)
    }

    /// Reconstruct a cell from its packed index. Returns `None` when the
    /// resolution field is invalid.
    pub fn from_index(index: u64) -> Option<Self> {
        let res = (index >> RES_SHIFT) as u8;
        Resolution::new(res)?;
        Some(HexCell(index))
    }

    /// The packed 64-bit index (stable across runs and platforms).
    pub fn index(&self) -> u64 {
        self.0
    }

    /// The resolution encoded in the index.
    pub fn resolution(&self) -> Resolution {
        Resolution::new((self.0 >> RES_SHIFT) as u8)
            .expect("index always stores a valid resolution")
    }

    fn axial(&self) -> Axial {
        let q = ((self.0 >> COORD_BITS) & COORD_MASK) as i64 - COORD_BIAS;
        let r = (self.0 & COORD_MASK) as i64 - COORD_BIAS;
        Axial { q, r }
    }

    /// Centroid of the cell in geographic coordinates. The paper uses the hex
    /// centroid as a model feature ("Location" in Table 4).
    pub fn center(&self) -> LatLng {
        let (x, y) = axial_to_plane(self.axial(), self.resolution());
        from_plane_km(x, y)
    }

    /// Average cell area at this cell's resolution in square kilometres.
    pub fn area_km2(&self) -> f64 {
        self.resolution().avg_cell_area_km2()
    }

    /// The hexagonal boundary as a six-vertex polygon.
    pub fn boundary(&self) -> Polygon {
        let res = self.resolution();
        let s = res.hex_size_km();
        let (cx, cy) = axial_to_plane(self.axial(), res);
        let vertices = (0..6)
            .map(|i| {
                // Pointy-top hexagon: vertices at 30, 90, ..., 330 degrees.
                let angle = std::f64::consts::PI / 180.0 * (60.0 * i as f64 + 30.0);
                from_plane_km(cx + s * angle.cos(), cy + s * angle.sin())
            })
            .collect();
        Polygon::new(vertices)
    }

    /// The six cells sharing an edge with this cell.
    pub fn neighbors(&self) -> Vec<HexCell> {
        let a = self.axial();
        let res = self.resolution();
        HEX_DIRECTIONS
            .iter()
            .map(|&(dq, dr)| {
                Self::from_parts(
                    res,
                    Axial {
                        q: a.q + dq,
                        r: a.r + dr,
                    },
                )
            })
            .collect()
    }

    /// All cells within `k` grid steps of this cell (including itself) — the
    /// analogue of H3's `gridDisk`. Contains `1 + 3k(k+1)` cells.
    pub fn grid_disk(&self, k: usize) -> Vec<HexCell> {
        let a = self.axial();
        let res = self.resolution();
        let k = k as i64;
        let mut out = Vec::with_capacity((1 + 3 * k * (k + 1)) as usize);
        for dq in -k..=k {
            let lo = (-k).max(-dq - k);
            let hi = k.min(-dq + k);
            for dr in lo..=hi {
                out.push(Self::from_parts(
                    res,
                    Axial {
                        q: a.q + dq,
                        r: a.r + dr,
                    },
                ));
            }
        }
        out
    }

    /// Grid distance (number of hex steps) to another cell of the same
    /// resolution. Returns `None` when the resolutions differ.
    pub fn grid_distance(&self, other: &HexCell) -> Option<u64> {
        if self.resolution() != other.resolution() {
            return None;
        }
        let a = self.axial();
        let b = other.axial();
        let dq = (a.q - b.q).abs();
        let dr = (a.r - b.r).abs();
        let ds = ((a.q + a.r) - (b.q + b.r)).abs();
        Some(((dq + dr + ds) / 2) as u64)
    }

    /// The cell at the next coarser resolution containing this cell's
    /// centroid. Like H3's `cellToParent` this is a centroid-based hierarchy;
    /// child cells are not geometrically nested inside their parent.
    pub fn parent(&self) -> Option<HexCell> {
        let coarser = self.resolution().coarser()?;
        Some(HexCell::containing(&self.center(), coarser))
    }

    /// Cells at the next finer resolution whose centroids fall inside this
    /// cell's boundary (approximately 7 cells, mirroring the aperture).
    pub fn children(&self) -> Option<Vec<HexCell>> {
        let finer = self.resolution().finer()?;
        let center_child = HexCell::containing(&self.center(), finer);
        let boundary = self.boundary();
        let mut out: Vec<HexCell> = center_child
            .grid_disk(2)
            .into_iter()
            .filter(|c| boundary.contains(&c.center()))
            .collect();
        out.sort();
        out.dedup();
        Some(out)
    }
}

impl std::fmt::Display for HexCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::NBM_RESOLUTION;

    fn dc() -> LatLng {
        LatLng::new(38.9072, -77.0369)
    }

    #[test]
    fn containing_is_deterministic() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let b = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert_eq!(a, b);
    }

    #[test]
    fn different_resolutions_give_different_cells() {
        let a = HexCell::containing(&dc(), Resolution::new(7).unwrap());
        let b = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert_ne!(a, b);
        assert_eq!(a.resolution().level(), 7);
        assert_eq!(b.resolution().level(), 8);
    }

    #[test]
    fn index_round_trip() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert_eq!(HexCell::from_index(a.index()), Some(a));
    }

    #[test]
    fn invalid_resolution_rejected() {
        assert!(HexCell::from_index(0xFFFF_FFFF_FFFF_FFFF).is_none());
    }

    #[test]
    fn neighbors_are_six_distinct_adjacent_cells() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let n = a.neighbors();
        assert_eq!(n.len(), 6);
        let mut unique = n.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
        for c in &n {
            assert_eq!(a.grid_distance(c), Some(1));
            assert_ne!(*c, a);
        }
    }

    #[test]
    fn grid_disk_sizes() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert_eq!(a.grid_disk(0).len(), 1);
        assert_eq!(a.grid_disk(1).len(), 7);
        assert_eq!(a.grid_disk(2).len(), 19);
        assert_eq!(a.grid_disk(3).len(), 37);
    }

    #[test]
    fn grid_distance_symmetric() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let b = HexCell::containing(&LatLng::new(38.95, -77.10), NBM_RESOLUTION);
        assert_eq!(a.grid_distance(&b), b.grid_distance(&a));
        assert!(a.grid_distance(&b).unwrap() > 0);
    }

    #[test]
    fn grid_distance_requires_same_resolution() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let b = HexCell::containing(&dc(), Resolution::new(7).unwrap());
        assert_eq!(a.grid_distance(&b), None);
    }

    #[test]
    fn boundary_contains_center() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert!(a.boundary().contains(&a.center()));
    }

    #[test]
    fn boundary_area_close_to_nominal() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let poly_area = a.boundary().area_km2();
        let nominal = a.area_km2();
        // Projection distortion at 39N stretches the planar hexagon; accept
        // a generous factor-of-two window — the pipeline only uses nominal
        // areas, never polygon areas.
        assert!(
            poly_area > nominal * 0.5 && poly_area < nominal * 2.0,
            "poly {poly_area} vs nominal {nominal}"
        );
    }

    #[test]
    fn parent_is_coarser_and_near() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let p = a.parent().unwrap();
        assert_eq!(p.resolution().level(), 7);
        assert!(p.center().haversine_km(&a.center()) < 3.0);
    }

    #[test]
    fn res0_has_no_parent() {
        let a = HexCell::containing(&dc(), Resolution::new(0).unwrap());
        assert!(a.parent().is_none());
    }

    #[test]
    fn children_count_close_to_aperture() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        let kids = a.children().unwrap();
        assert!(
            (5..=9).contains(&kids.len()),
            "expected ~7 children, got {}",
            kids.len()
        );
        for k in &kids {
            assert_eq!(k.resolution().level(), 9);
        }
    }

    #[test]
    fn res15_has_no_children() {
        let a = HexCell::containing(&dc(), Resolution::new(15).unwrap());
        assert!(a.children().is_none());
    }

    #[test]
    fn display_is_hex_string() {
        let a = HexCell::containing(&dc(), NBM_RESOLUTION);
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn nearby_points_share_cell_far_points_do_not() {
        let p = dc();
        let near = LatLng::new(p.lat + 0.0005, p.lng + 0.0005);
        let far = LatLng::new(p.lat + 0.5, p.lng + 0.5);
        let a = HexCell::containing(&p, NBM_RESOLUTION);
        // 50 m away is *usually* the same cell; allow it to differ only if on
        // a boundary — but the far point must always differ.
        let _ = HexCell::containing(&near, NBM_RESOLUTION);
        assert_ne!(a, HexCell::containing(&far, NBM_RESOLUTION));
    }
}
