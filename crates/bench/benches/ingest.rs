//! Criterion bench of the CSV ingest readers on a ~100×-scaled replica of
//! the committed `bdc_sample` fixture (~30k availability rows).
//!
//! The headline comparison is the perf satellite of the ingest PR: the
//! scratch-buffer reader (`CsvRows`, one line buffer + one bounds vector
//! reused for every row) against the naive per-row-allocating baseline
//! (`AllocCsvRows`, a fresh `Vec<String>` per row). Both split identically;
//! the delta is pure allocator traffic. Alongside wall-clock, the bench
//! reports rows/s for both readers (and for the full typed availability
//! parse on top of the scratch reader) as metrics.
//!
//! Regenerate the committed report with (from the workspace root; the path
//! must be absolute because cargo runs the bench binary with `crates/bench`
//! as its working directory):
//!
//! ```sh
//! BENCH_JSON=$PWD/BENCH_ingest.json cargo bench -p redsus_bench --bench ingest
//! ```

use criterion::{criterion_group, criterion_main, report_metric, Criterion};
use redsus_ingest::{AllocCsvRows, AvailabilityReader, CsvRows};
use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Rows in the scaled file: the committed fixture holds ~300 availability
/// rows, so ~100× is 30k.
const ROWS: usize = 30_000;

/// Write the scaled availability file once; rows follow the exact fixture
/// schema (12 columns, valid tech codes, 16-hex-digit cell ids).
fn scaled_file() -> PathBuf {
    let path = std::env::temp_dir().join(format!("redsus_bench_ingest_{}.csv", std::process::id()));
    let file = std::fs::File::create(&path).expect("create scaled bench file");
    let mut w = std::io::BufWriter::new(file);
    writeln!(
        w,
        "frn,provider_id,brand_name,location_id,technology,\
         max_advertised_download_speed,max_advertised_upload_speed,low_latency,\
         business_residential_code,state_usps,block_geoid,h3_res8_id"
    )
    .unwrap();
    let hex =
        hexgrid::HexCell::containing(&geoprim::LatLng::new(41.25, -96.0), hexgrid::NBM_RESOLUTION);
    for i in 0..ROWS {
        let provider = 100 + (i % 3) as u32 * 100;
        let tech = if i % 2 == 0 { 50 } else { 72 };
        writeln!(
            w,
            "{},{provider},Provider {provider},{},{tech},1000.0,{}.0,1,X,NE,3105500010010{:02},{hex}",
            5_000_000 + provider as u64,
            1000 + i as u64,
            100 + i % 900,
            i % 100,
        )
        .unwrap();
    }
    w.flush().unwrap();
    path
}

/// Drain the scratch reader, touching every field.
fn drain_scratch(path: &Path) -> usize {
    let mut rows = CsvRows::open(path).expect("open");
    let mut n = 0usize;
    while let Some(fields) = rows.next_row().expect("row") {
        for i in 0..fields.len() {
            black_box(fields.get(i));
        }
        n += 1;
    }
    n
}

/// Drain the allocating baseline, touching every field.
fn drain_alloc(path: &Path) -> usize {
    let mut rows = AllocCsvRows::open(path).expect("open");
    let mut n = 0usize;
    while let Some(fields) = rows.next_row().expect("row") {
        for field in &fields {
            black_box(field.as_str());
        }
        n += 1;
    }
    n
}

/// Drain the full typed availability parse (header validation + per-field
/// parsing + claim-record construction) over the scratch reader.
fn drain_parsed(path: &Path) -> usize {
    let mut reader = AvailabilityReader::open(path).expect("open");
    let mut n = 0usize;
    while let Some(row) = reader.next_record().expect("row") {
        black_box(&row.record);
        n += 1;
    }
    n
}

/// Median-of-5 rows/s for one drain function.
fn rows_per_s(f: impl Fn() -> usize) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let started = Instant::now();
            let n = f();
            n as f64 / started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

fn bench_readers(c: &mut Criterion) {
    let path = scaled_file();

    let mut group = c.benchmark_group("ingest_csv_30k_rows");
    group.sample_size(10);
    group.bench_function("scratch_reader", |b| {
        b.iter(|| black_box(drain_scratch(&path)))
    });
    group.bench_function("alloc_reader", |b| b.iter(|| black_box(drain_alloc(&path))));
    group.bench_function("typed_availability_parse", |b| {
        b.iter(|| black_box(drain_parsed(&path)))
    });
    group.finish();

    // Headline metrics: rows/s with and without the scratch buffers.
    assert_eq!(drain_scratch(&path), ROWS + 1); // header counts as a row here
    let scratch = rows_per_s(|| drain_scratch(&path));
    let alloc = rows_per_s(|| drain_alloc(&path));
    let parsed = rows_per_s(|| drain_parsed(&path));
    report_metric("ingest/rows", ROWS as f64, "rows");
    report_metric("ingest/scratch_rows_per_s", scratch, "rows/s");
    report_metric("ingest/alloc_rows_per_s", alloc, "rows/s");
    report_metric("ingest/scratch_over_alloc", scratch / alloc, "x");
    report_metric("ingest/typed_parse_rows_per_s", parsed, "rows/s");

    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_readers);
criterion_main!(benches);
