//! Vector similarity measures.

/// Cosine similarity of two vectors. Returns 0 when either vector is all
/// zeros or the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Euclidean distance between two vectors. Returns infinity when the lengths
/// differ.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    if a.len() != b.len() {
        return f32::INFINITY;
    }
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_unit_vectors_is_one() {
        let v = vec![0.6f32, 0.8];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        assert!((cosine_similarity(&[1.0, 2.0], &[-1.0, -2.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_handles_degenerate_input() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn euclidean_basics() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
        assert!(euclidean_distance(&[1.0], &[1.0, 2.0]).is_infinite());
    }
}
