//! The observability contract of the scoring server, pinned hermetically on
//! loopback: `/metrics` serves parseable Prometheus text whose counters
//! advance across pipelined keep-alive requests and survive a hot model
//! reload; `/stats` is one strict-JSON document mirroring the same numbers;
//! and disabling metrics degrades to 503 without touching the request path.

mod common;

use std::sync::Arc;

use common::{assert_strict_json, FramedClient};
use ml::{Dataset, GbdtModel, GbdtParams};
use redsus_serve::{ModelRegistry, ScoreServer, ServeConfig, ServedModel};

fn model(seed: u32) -> ServedModel {
    let mut d = Dataset::new(vec!["a".into(), "b".into()]);
    for i in 0..60 {
        let x = (i as f32 + seed as f32 * 0.37) / 60.0;
        d.push_row(&[x, 1.0 - x], if x > 0.5 { 1.0 } else { 0.0 });
    }
    ServedModel::from_model(GbdtModel::fit(
        &d,
        GbdtParams {
            n_estimators: 3 + seed as usize % 3,
            max_depth: 3,
            ..GbdtParams::default()
        },
    ))
}

fn csv(salt: usize) -> String {
    let mut body = String::from("a,b\n");
    for r in 0..4 {
        let x = (salt % 7) as f32 * 0.1 + r as f32 * 0.02;
        body.push_str(&format!("{x},{}\n", 1.0 - x));
    }
    body
}

/// Pull one series' value out of a Prometheus exposition. `line_start` is
/// the full series name including any `{labels}` — matched against the
/// line prefix before the space.
fn series_value(scrape: &str, series: &str) -> Option<f64> {
    scrape.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        (name == series).then(|| value.parse().expect("series value parses"))
    })
}

/// The headline test: counters advance across pipelined keep-alive
/// requests, and the scrape itself is well-formed Prometheus text.
#[test]
fn metrics_counters_advance_across_pipelined_keepalive_requests() {
    let served = model(1);
    let server = ScoreServer::start(served, ServeConfig::default()).expect("bind loopback");
    let mut client = FramedClient::connect(server.addr());

    // A pipelined burst of 10 scores, then a scrape, all on one connection.
    for i in 0..10 {
        client.send_score("", &csv(i), false);
    }
    client.send_get("/metrics", false);
    for _ in 0..10 {
        let r = client.read_response().expect("score response");
        assert_eq!(r.status, 200);
    }
    let scrape1 = client.read_response().expect("metrics response");
    assert_eq!(scrape1.status, 200);
    assert_eq!(
        scrape1.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    // 10 scores seen; the /metrics request itself is counted only on the
    // *next* scrape (the counter increments after the body is built).
    assert_eq!(
        series_value(&scrape1.body, "http_requests_total"),
        Some(10.0)
    );
    assert_eq!(series_value(&scrape1.body, "scored_rows_total"), Some(40.0));
    assert_eq!(
        series_value(&scrape1.body, "http_connections_total"),
        Some(1.0)
    );
    assert_eq!(
        series_value(&scrape1.body, "http_connections_active"),
        Some(1.0)
    );
    assert_eq!(
        series_value(
            &scrape1.body,
            "http_responses_total{route=\"/score\",status=\"200\"}"
        ),
        Some(10.0)
    );
    // The latency histogram observed one duration per request, buckets are
    // cumulative, and +Inf equals _count.
    assert_eq!(
        series_value(
            &scrape1.body,
            "http_request_duration_seconds_count{route=\"/score\"}"
        ),
        Some(10.0)
    );
    assert_eq!(
        series_value(
            &scrape1.body,
            "http_request_duration_seconds_bucket{route=\"/score\",le=\"+Inf\"}"
        ),
        Some(10.0)
    );
    assert_eq!(
        series_value(&scrape1.body, "model_registry_models"),
        Some(1.0)
    );

    // More traffic on the same connection: everything keeps counting.
    for i in 0..5 {
        client.send_score("", &csv(i), false);
    }
    client.send_get("/metrics", true);
    for _ in 0..5 {
        assert_eq!(client.read_response().expect("score").status, 200);
    }
    let scrape2 = client.read_response().expect("second scrape");
    assert_eq!(
        series_value(&scrape2.body, "http_requests_total"),
        Some(16.0) // 10 scores + 1 scrape + 5 scores
    );
    assert_eq!(series_value(&scrape2.body, "scored_rows_total"), Some(60.0));
    assert_eq!(
        series_value(&scrape2.body, "http_connections_total"),
        Some(1.0)
    );
    client.expect_clean_close();

    // `/metrics` numbers and `ScoreServer::stats()` read the same atomics.
    let stats = server.shutdown();
    assert_eq!(stats.requests, 17);
    assert_eq!(stats.scored_rows, 60);
    assert_eq!(stats.connections, 1);
}

/// Counters survive (and registry lifecycle series record) a hot model
/// reload while the connection stays open.
#[test]
fn metrics_survive_hot_model_reload() {
    let registry = Arc::new(ModelRegistry::with_model(model(1)));
    let server = ScoreServer::start_with_registry(Arc::clone(&registry), ServeConfig::default())
        .expect("bind loopback");
    let mut client = FramedClient::connect(server.addr());

    client.send_score("", &csv(0), false);
    assert_eq!(client.read_response().expect("score").status, 200);

    // Hot reload: publish a second version (becomes the default).
    registry.publish(model(2));

    client.send_score("", &csv(1), false);
    client.send_get("/metrics", true);
    assert_eq!(client.read_response().expect("score").status, 200);
    let scrape = client.read_response().expect("scrape");
    // The counter kept counting across the swap…
    assert_eq!(series_value(&scrape.body, "http_requests_total"), Some(2.0));
    assert_eq!(series_value(&scrape.body, "scored_rows_total"), Some(8.0));
    // …and the registry lifecycle is visible: with_model + publish = 2
    // publishes, and the publish swapped the default.
    assert_eq!(
        series_value(&scrape.body, "model_registry_publishes_total"),
        Some(2.0)
    );
    assert_eq!(
        series_value(&scrape.body, "model_registry_default_swaps_total"),
        Some(2.0)
    );
    assert_eq!(
        series_value(&scrape.body, "model_registry_models"),
        Some(2.0)
    );
    client.expect_clean_close();
    server.shutdown();
}

/// `/stats` is one strict JSON document carrying the server counters and
/// the full metrics snapshot.
#[test]
fn stats_endpoint_is_strict_json_with_server_counters() {
    let server = ScoreServer::start(model(1), ServeConfig::default()).expect("bind loopback");
    let mut client = FramedClient::connect(server.addr());

    client.send_score("", &csv(3), false);
    assert_eq!(client.read_response().expect("score").status, 200);
    client.send_get("/stats", true);
    let stats = client.read_response().expect("stats");
    assert_eq!(stats.status, 200);
    assert_eq!(stats.header("content-type"), Some("application/json"));
    assert_strict_json(&stats.body);
    assert!(stats
        .body
        .contains("\"server\":{\"models\":1,\"requests\":1,\"scored_rows\":4,"));
    // The in-flight gauge counts the /stats request being handled.
    assert!(stats.body.contains("\"requests_in_flight\":1"));
    assert!(stats.body.contains("\"connections_active\":1"));
    // The metrics snapshot rides along with the registry families in it.
    assert!(stats.body.contains("\"scored_rows_total\""));
    assert!(stats.body.contains("\"http_request_duration_seconds\""));
    client.expect_clean_close();
    server.shutdown();
}

/// `metrics: false` degrades gracefully: scoring works, `/metrics` answers
/// 503, `/stats` carries the counters with a `null` snapshot, and
/// `ScoreServer::stats()` still counts (the `ServerStats` atomics are
/// always active).
#[test]
fn disabled_metrics_answer_503_but_stats_still_count() {
    let config = ServeConfig {
        metrics: false,
        ..ServeConfig::default()
    };
    let server = ScoreServer::start(model(1), config).expect("bind loopback");
    assert!(server.metrics_registry().is_none());
    let mut client = FramedClient::connect(server.addr());

    client.send_score("", &csv(2), false);
    assert_eq!(client.read_response().expect("score").status, 200);
    client.send_get("/metrics", false);
    let denied = client.read_response().expect("metrics denial");
    assert_eq!(denied.status, 503);
    assert_strict_json(&denied.body);
    client.send_get("/stats", true);
    let stats = client.read_response().expect("stats");
    assert_eq!(stats.status, 200);
    assert_strict_json(&stats.body);
    assert!(stats.body.ends_with("\"metrics\":null}"));
    client.expect_clean_close();

    let final_stats = server.shutdown();
    assert_eq!(final_stats.requests, 3);
    assert_eq!(final_stats.scored_rows, 4);
}
