//! Model training and the paper's hold-out evaluation strategies (§6.2).

use std::collections::HashSet;

use ml::metrics::classification_report;
use ml::{f1_score, roc_auc, roc_curve, train_test_split, GbdtModel, GbdtParams, RandomBaseline};
use serde::{Deserialize, Serialize};

use crate::features::FeatureMatrix;
use crate::labels::LabelSource;

/// Evaluation of a model on a hold-out set, together with the naive
/// random-guessing baseline the paper compares against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// ROC AUC of the model.
    pub auc: f64,
    /// F1 of the positive (suspicious/unserved) class at threshold 0.5.
    pub f1: f64,
    /// Full precision/recall/F1/confusion report at threshold 0.5.
    pub report: ml::ClassificationReport,
    /// ROC curve points (FPR, TPR).
    pub roc: Vec<(f64, f64)>,
    /// ROC AUC of the random baseline on the same hold-out.
    pub baseline_auc: f64,
    /// Number of hold-out rows.
    pub support: usize,
}

/// The hold-out strategies of §6.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HoldoutStrategy {
    /// A random fraction of observations (§6.2.1).
    RandomObservations { fraction: f64 },
    /// A random fraction of observations labelled by FCC-adjudicated
    /// challenges only (§6.2.1, second evaluation).
    AdjudicatedOnly { fraction: f64 },
    /// Whole states held out of training (§6.2.2).
    States(Vec<String>),
}

/// Outcome of training under a hold-out strategy.
pub struct HoldoutOutcome {
    /// The trained model.
    pub model: GbdtModel,
    /// Evaluation on the held-out rows.
    pub evaluation: EvaluationResult,
    /// Row indices (into the feature matrix) of the held-out set.
    pub test_rows: Vec<usize>,
}

/// Default GBDT hyper-parameters used throughout the experiments; mirrors
/// XGBoost's "standard hyperparameters" at a scale that trains in seconds on
/// the synthetic world.
pub fn default_params(seed: u64) -> GbdtParams {
    GbdtParams {
        n_estimators: 60,
        learning_rate: 0.15,
        max_depth: 5,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 1.0,
        subsample: 0.9,
        colsample_bytree: 0.8,
        max_bins: 64,
        seed,
        early_stopping_rounds: None,
    }
}

/// Evaluate a trained model against a hold-out subset of the matrix.
pub fn evaluate(
    model: &GbdtModel,
    matrix: &FeatureMatrix,
    rows: &[usize],
    seed: u64,
) -> EvaluationResult {
    let test = matrix.dataset.subset(rows);
    let probs = model.predict_dataset(&test);
    let baseline = RandomBaseline::fit(&test, seed).predict_dataset(&test);
    EvaluationResult {
        auc: roc_auc(test.labels(), &probs),
        f1: f1_score(test.labels(), &probs, 0.5),
        report: classification_report(test.labels(), &probs, 0.5),
        roc: roc_curve(test.labels(), &probs),
        baseline_auc: roc_auc(test.labels(), &baseline),
        support: rows.len(),
    }
}

/// Train under a hold-out strategy and evaluate on the held-out rows.
pub fn run_holdout(
    matrix: &FeatureMatrix,
    strategy: &HoldoutStrategy,
    params: GbdtParams,
) -> HoldoutOutcome {
    let n = matrix.dataset.n_rows();
    let (train_rows, test_rows) = match strategy {
        HoldoutStrategy::RandomObservations { fraction } => {
            train_test_split(n, *fraction, params.seed)
        }
        HoldoutStrategy::AdjudicatedOnly { fraction } => {
            // Hold out a fraction of the FCC-adjudicated observations; train
            // on everything else.
            let adjudicated: Vec<usize> = matrix
                .rows_where(|o| matches!(o.source, LabelSource::Challenge { adjudicated: true }));
            let (_, held) = train_test_split(adjudicated.len(), *fraction, params.seed);
            let held: HashSet<usize> = held.into_iter().map(|i| adjudicated[i]).collect();
            let train: Vec<usize> = (0..n).filter(|i| !held.contains(i)).collect();
            let mut test: Vec<usize> = held.into_iter().collect();
            test.sort_unstable();
            (train, test)
        }
        HoldoutStrategy::States(states) => {
            let held: HashSet<&str> = states.iter().map(String::as_str).collect();
            let groups = matrix.states();
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, g) in groups.iter().enumerate() {
                if held.contains(g.as_str()) {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, test)
        }
    };
    let train = matrix.dataset.subset(&train_rows);
    let model = GbdtModel::fit(&train, params);
    let evaluation = evaluate(&model, matrix, &test_rows, params.seed);
    HoldoutOutcome {
        model,
        evaluation,
        test_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{build_features, FeatureConfig};
    use crate::labels::LabelingOptions;
    use crate::pipeline::AnalysisContext;
    use synth::{SynthConfig, SynthUs};

    // Seed re-pinned when world generation moved to sharded RNG streams.
    fn matrix() -> FeatureMatrix {
        let world = SynthUs::generate(&SynthConfig::tiny(9));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        build_features(&world, &ctx, &labels, &FeatureConfig::default())
    }

    #[test]
    fn random_observation_holdout_beats_baseline() {
        let m = matrix();
        let outcome = run_holdout(
            &m,
            &HoldoutStrategy::RandomObservations { fraction: 0.1 },
            default_params(1),
        );
        let e = &outcome.evaluation;
        assert!(e.auc > 0.85, "model AUC {}", e.auc);
        assert!(e.auc > e.baseline_auc + 0.2);
        assert!(e.f1 > 0.6, "F1 {}", e.f1);
        assert_eq!(e.support, outcome.test_rows.len());
    }

    #[test]
    fn state_holdout_generalises() {
        let m = matrix();
        let outcome = run_holdout(
            &m,
            &HoldoutStrategy::States(vec!["NE".into(), "GA".into(), "OK".into()]),
            default_params(2),
        );
        assert!(!outcome.test_rows.is_empty());
        // Every held-out row belongs to a held-out state.
        for &r in &outcome.test_rows {
            assert!(["NE", "GA", "OK"].contains(&m.observations[r].state.as_str()));
        }
        assert!(
            outcome.evaluation.auc > 0.8,
            "state-holdout AUC {}",
            outcome.evaluation.auc
        );
    }

    #[test]
    fn adjudicated_holdout_contains_only_adjudicated_rows() {
        let m = matrix();
        let outcome = run_holdout(
            &m,
            &HoldoutStrategy::AdjudicatedOnly { fraction: 0.3 },
            default_params(3),
        );
        for &r in &outcome.test_rows {
            assert!(matches!(
                m.observations[r].source,
                LabelSource::Challenge { adjudicated: true }
            ));
        }
        // The adjudicated subset is small and carries genuine label noise
        // (claims the FCC could not find enough evidence against); the paper
        // also reports degraded performance here. The model must still beat
        // chance clearly.
        assert!(
            outcome.evaluation.auc > 0.55,
            "auc {}",
            outcome.evaluation.auc
        );
    }
}
