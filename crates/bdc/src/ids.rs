//! Strongly-typed identifiers used across the BDC data model.
//!
//! The FCC's data uses several overlapping numeric id spaces (Provider IDs,
//! FCC Registration Numbers, BSL location ids, Autonomous System Numbers);
//! newtypes keep them from being mixed up.

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw numeric value.
            pub fn value(&self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_newtype!(
    /// A BDC Provider ID — the FCC-assigned identifier each filer reports
    /// under (e.g. Comcast files under a single provider id even though it
    /// holds dozens of ASNs).
    ProviderId,
    u32
);

id_newtype!(
    /// A Broadband Serviceable Location id — one structure in the Fabric.
    LocationId,
    u64
);

id_newtype!(
    /// An FCC Registration Number. Each provider is associated with one or
    /// more FRNs whose registration metadata (contact email, company name,
    /// postal address) drives the provider→ASN matching.
    Frn,
    u64
);

id_newtype!(
    /// An Autonomous System Number from the routing system; MLab speed tests
    /// carry the client's ASN, which is how tests are attributed to providers.
    Asn,
    u32
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_with_values() {
        let p = ProviderId(42);
        let l = LocationId(42);
        assert_eq!(p.value(), 42);
        assert_eq!(l.value(), 42);
    }

    #[test]
    fn display_includes_type_name() {
        assert_eq!(format!("{}", ProviderId(7)), "ProviderId7");
        assert_eq!(format!("{}", Asn(7922)), "Asn7922");
    }

    #[test]
    fn usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(ProviderId(1));
        set.insert(ProviderId(1));
        set.insert(ProviderId(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn from_conversion() {
        let a: Asn = 7922u32.into();
        assert_eq!(a, Asn(7922));
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(LocationId(3) < LocationId(10));
    }
}
