//! Synthetic provider names and filing-methodology text.
//!
//! §5.1 of the paper notes two phenomena in the free-text methodologies that
//! the model can exploit: some providers describe methodologies the FCC
//! explicitly disallows (reporting whole census blocks, as under the old Form
//! 477), and many small providers file word-for-word identical text because
//! the same consultants prepare their filings. The templates below reproduce
//! both phenomena.

use rand::rngs::StdRng;
use rand::Rng;

/// Styles of availability-reporting methodology a provider may describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodologyKind {
    /// Reports only addresses with active subscribers.
    SubscriberAddresses,
    /// Uses engineering records of fibre routes and drop lengths.
    FiberEngineering,
    /// Uses an RF propagation model (wireless providers).
    PropagationModel,
    /// Reports entire census blocks — disallowed, correlates with
    /// over-claiming.
    CensusBlocks,
    /// Word-for-word consultant-prepared boilerplate shared by many filers.
    ConsultantTemplate,
}

impl MethodologyKind {
    /// The filing text for this methodology. Consultant templates are
    /// verbatim-identical across providers; the others embed the provider
    /// brand so they are near- but not exactly identical.
    pub fn text(&self, brand: &str) -> String {
        match self {
            MethodologyKind::SubscriberAddresses => format!(
                "{brand} reports broadband serviceable locations at which the company has active \
                 subscribers, based on billing system records and service addresses validated \
                 against the location fabric. Locations without an existing subscriber are \
                 included only where a standard installation could be completed within ten \
                 business days."
            ),
            MethodologyKind::FiberEngineering => format!(
                "{brand} determined served locations using engineering records of constructed \
                 fiber routes, splice points and maximum drop lengths. Locations within the \
                 engineering serving area were matched to the location fabric using geocoded \
                 addresses and parcel centroids."
            ),
            MethodologyKind::PropagationModel => format!(
                "{brand} determined fixed wireless coverage using a radio frequency propagation \
                 model incorporating terrain, clutter and antenna characteristics of each access \
                 point, validated with field measurements. Locations with predicted signal above \
                 the service threshold are reported as serviceable."
            ),
            MethodologyKind::CensusBlocks => format!(
                "{brand} reports service availability for all locations in census blocks in which \
                 the company offers or advertises mass market broadband service, consistent with \
                 the company's prior FCC Form 477 filings."
            ),
            MethodologyKind::ConsultantTemplate => "Availability was determined on behalf of the \
                 filer by Broadband Filing Associates using provider-supplied infrastructure maps, \
                 buffer analysis of serviceable road segments, and the current broadband \
                 serviceable location fabric. Locations intersecting the buffered service area are \
                 reported as served."
                .to_string(),
        }
    }

    /// Whether the methodology is one the FCC disallows for the BDC.
    pub fn is_disallowed(&self) -> bool {
        matches!(self, MethodologyKind::CensusBlocks)
    }
}

/// Name fragments for synthetic ISPs. No real ISP brand names are used.
const NAME_PREFIXES: &[&str] = &[
    "Blue Ridge",
    "Prairie",
    "Summit",
    "Lakeside",
    "Pioneer",
    "Granite",
    "Cedar Valley",
    "Bayou",
    "High Plains",
    "Redwood",
    "Harbor",
    "Mesa",
    "Timberline",
    "Cascade",
    "Bluegrass",
    "Dune",
    "Foothill",
    "Ridgeline",
    "Sandhill",
    "Palmetto",
    "Wolverine",
    "Cornhusker",
    "Sooner",
    "Ozark",
    "Hoosier",
    "Piedmont",
    "Tidewater",
    "Copperhead",
    "Juniper",
    "Saguaro",
];

const NAME_SUFFIXES: &[&str] = &[
    "Fiber",
    "Telecom",
    "Broadband",
    "Communications",
    "Cable",
    "Wireless",
    "Networks",
    "Connect",
    "Internet",
    "Cooperative",
];

const CORPORATE_SUFFIXES: &[&str] = &["Inc.", "LLC", "Co.", "Corp.", ""];

/// Names for the major national ISPs (synthetic stand-ins for the paper's
/// "largest eight terrestrial ISPs").
pub const MAJOR_PROVIDER_NAMES: &[&str] = &[
    "National Cable Holdings",
    "Continental Fiber",
    "TransAmerica Telecom",
    "Unified Wireless",
    "Metro Broadband Group",
    "Heartland Communications",
    "Atlantic Gigabit",
    "Pacific Crest Networks",
];

/// Generate a synthetic regional/local provider legal name.
pub fn provider_name(rng: &mut StdRng) -> String {
    let prefix = NAME_PREFIXES[rng.gen_range(0..NAME_PREFIXES.len())];
    let suffix = NAME_SUFFIXES[rng.gen_range(0..NAME_SUFFIXES.len())];
    let corp = CORPORATE_SUFFIXES[rng.gen_range(0..CORPORATE_SUFFIXES.len())];
    if corp.is_empty() {
        format!("{prefix} {suffix}")
    } else {
        format!("{prefix} {suffix}, {corp}")
    }
}

/// Derive a plausible email domain from a company name.
pub fn email_domain_for(name: &str) -> String {
    let cleaned: String = name
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    format!("{}.net", &cleaned[..cleaned.len().min(18)])
}

/// A plausible street address in the provider's home town.
pub fn street_address_for(rng: &mut StdRng, seq: u32) -> String {
    let streets = [
        "Main Street",
        "Oak Avenue",
        "Industrial Parkway",
        "Commerce Drive",
        "Depot Road",
        "Telegraph Road",
        "Courthouse Square",
        "Mill Lane",
    ];
    let street = streets[rng.gen_range(0..streets.len())];
    format!("{} {street}, Suite {}", 100 + seq * 7 % 899, 1 + seq % 40)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn consultant_template_is_identical_across_brands() {
        let a = MethodologyKind::ConsultantTemplate.text("Alpha Fiber");
        let b = MethodologyKind::ConsultantTemplate.text("Beta Cable");
        assert_eq!(a, b);
    }

    #[test]
    fn branded_methodologies_differ_but_share_structure() {
        let a = MethodologyKind::FiberEngineering.text("Alpha Fiber");
        let b = MethodologyKind::FiberEngineering.text("Beta Cable");
        assert_ne!(a, b);
        assert!(a.contains("fiber routes") && b.contains("fiber routes"));
    }

    #[test]
    fn census_blocks_is_the_disallowed_methodology() {
        assert!(MethodologyKind::CensusBlocks.is_disallowed());
        assert!(!MethodologyKind::FiberEngineering.is_disallowed());
    }

    #[test]
    fn provider_names_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(provider_name(&mut a), provider_name(&mut b));
    }

    #[test]
    fn email_domains_are_wellformed() {
        let d = email_domain_for("Blue Ridge Fiber, LLC");
        assert!(d.ends_with(".net"));
        assert!(!d.contains(' '));
        assert!(d.starts_with("blueridgefiber"));
    }

    #[test]
    fn eight_major_names() {
        assert_eq!(MAJOR_PROVIDER_NAMES.len(), 8);
    }

    #[test]
    fn addresses_contain_street_and_suite() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = street_address_for(&mut rng, 3);
        assert!(a.contains("Suite"));
    }
}
