//! Typed ingest failures.
//!
//! Real-data files fail in predictable ways — a column renamed between BDC
//! vintages, a truncated download, a NaN smuggled into a speed field — and
//! every one of them must surface as a *specific* error naming the file and
//! line, never as a silently skipped row. The negative fixtures under
//! `tests/fixtures/bdc_sample/negative/` exercise each variant.

use std::fmt;

/// Everything that can go wrong while ingesting BDC or Ookla files. Each
/// variant carries enough context (file, line, column, offending value) to
/// fix the input without re-running under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// An OS-level read failure.
    Io { path: String, message: String },
    /// A required column is absent from the header.
    MissingColumn { file: String, column: String },
    /// A column appears twice in the header.
    DuplicateColumn { file: String, column: String },
    /// The header carries a column the schema does not define.
    UnknownColumn { file: String, column: String },
    /// Every expected column is present exactly once, but in the wrong
    /// order. Column order is part of the schema: positional readers over
    /// shuffled columns produce silently wrong data, so this is an error,
    /// not a remap.
    ReorderedColumns {
        file: String,
        expected: String,
        found: String,
    },
    /// A data row has the wrong number of fields (typically a truncated
    /// download).
    TruncatedRow {
        file: String,
        line: usize,
        expected: usize,
        found: usize,
    },
    /// A technology code outside the BDC fixed-broadband table.
    BadTechCode {
        file: String,
        line: usize,
        code: String,
    },
    /// A speed field that parsed as a float but is NaN or infinite.
    NonFiniteSpeed {
        file: String,
        line: usize,
        column: String,
        value: String,
    },
    /// Any other field that failed to parse (bad integer, bad hex cell id,
    /// bad quadkey, unknown service-type code, ...).
    BadField {
        file: String,
        line: usize,
        column: String,
        value: String,
    },
    /// The data directory is missing a required piece entirely (no release
    /// directories, no availability files, ...).
    MissingData { path: String, detail: String },
    /// An ingest stage held more entries resident than the configured
    /// budget allows. Carries the meter's stage report message verbatim.
    BudgetExceeded { message: String },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, message } => write!(f, "{path}: io error: {message}"),
            IngestError::MissingColumn { file, column } => {
                write!(f, "{file}: missing required column `{column}`")
            }
            IngestError::DuplicateColumn { file, column } => {
                write!(f, "{file}: duplicate column `{column}`")
            }
            IngestError::UnknownColumn { file, column } => {
                write!(f, "{file}: unknown column `{column}`")
            }
            IngestError::ReorderedColumns {
                file,
                expected,
                found,
            } => write!(
                f,
                "{file}: columns out of order: expected `{expected}`, found `{found}`"
            ),
            IngestError::TruncatedRow {
                file,
                line,
                expected,
                found,
            } => write!(
                f,
                "{file}:{line}: truncated row: expected {expected} fields, found {found}"
            ),
            IngestError::BadTechCode { file, line, code } => {
                write!(f, "{file}:{line}: unknown BDC technology code `{code}`")
            }
            IngestError::NonFiniteSpeed {
                file,
                line,
                column,
                value,
            } => write!(
                f,
                "{file}:{line}: non-finite speed in `{column}`: `{value}`"
            ),
            IngestError::BadField {
                file,
                line,
                column,
                value,
            } => write!(f, "{file}:{line}: bad value in `{column}`: `{value}`"),
            IngestError::MissingData { path, detail } => {
                write!(f, "{path}: {detail}")
            }
            IngestError::BudgetExceeded { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl IngestError {
    /// Wrap an OS error with the path it happened on.
    pub fn io(path: &std::path::Path, err: std::io::Error) -> Self {
        IngestError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}
