//! Configuration of the synthetic world generator.

use serde::{Deserialize, Serialize};

/// All knobs of the synthetic United States. Every quantity scales linearly
/// from `n_bsls`, so the same code path is used for quick unit tests
/// ([`SynthConfig::tiny`]), the default experiment scale
/// ([`SynthConfig::default`]) and larger runs ([`SynthConfig::large`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master RNG seed; the entire world is a pure function of the config.
    pub seed: u64,
    /// Total number of Broadband Serviceable Locations to generate.
    pub n_bsls: usize,
    /// Number of providers (including the majors).
    pub n_providers: usize,
    /// Number of "major" national ISPs (the paper's Figure 6 breaks out 8).
    pub n_major_providers: usize,
    /// Average number of BSLs per town cluster (controls hex density; ~250
    /// yields the paper's median of ~4 BSLs per occupied res-8 hex).
    pub bsls_per_town: usize,
    /// Fraction of a provider's truthful footprint additionally over-claimed
    /// by a typical (non-JCC) provider.
    pub overclaim_fraction: f64,
    /// Probability that a false claim in an active state gets challenged.
    pub challenge_rate_false: f64,
    /// Probability that a true claim in an active state gets challenged.
    pub challenge_rate_true: f64,
    /// Probability that an unchallenged false claim is silently corrected by
    /// the provider in a later minor release (the "map diff" signal).
    pub correction_rate: f64,
    /// Expected Ookla unique devices per BSL in genuinely served areas.
    pub ookla_devices_per_served_bsl: f64,
    /// Expected MLab tests per provider per genuinely served hex.
    pub mlab_tests_per_served_hex: f64,
    /// Fraction of providers that can be matched to ASNs (the paper matches
    /// 72.4%).
    pub asn_match_rate: f64,
    /// Include a Jefferson-County-Cable-style intentional over-claimer.
    pub include_jcc: bool,
    /// Number of bi-weekly minor releases to generate after the initial one.
    pub n_minor_releases: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 20221118, // the initial NBM's release month
            n_bsls: 40_000,
            n_providers: 160,
            n_major_providers: 8,
            bsls_per_town: 250,
            overclaim_fraction: 0.22,
            challenge_rate_false: 0.60,
            challenge_rate_true: 0.015,
            correction_rate: 0.25,
            ookla_devices_per_served_bsl: 1.6,
            mlab_tests_per_served_hex: 3.0,
            asn_match_rate: 0.72,
            include_jcc: true,
            n_minor_releases: 6,
        }
    }
}

impl SynthConfig {
    /// A very small world for unit tests (a few thousand BSLs, a handful of
    /// providers) that still exercises every code path.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            n_bsls: 4_000,
            n_providers: 30,
            n_major_providers: 4,
            ..Self::default()
        }
    }

    /// The default experiment scale used by the benchmark harness.
    pub fn experiment(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A larger world for longer benchmark runs.
    pub fn large(seed: u64) -> Self {
        Self {
            seed,
            n_bsls: 120_000,
            n_providers: 400,
            n_major_providers: 8,
            ..Self::default()
        }
    }

    /// Basic sanity checks; called by the generator before doing any work.
    ///
    /// The error message is returned verbatim by [`crate::SynthUs::generate_with`]
    /// and used verbatim as the panic payload of [`crate::SynthUs::generate`]
    /// (prefixed with `"invalid SynthConfig: "`).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_bsls == 0 {
            return Err("n_bsls must be positive".into());
        }
        if self.n_providers == 0 {
            return Err("n_providers must be positive".into());
        }
        if self.n_major_providers > self.n_providers {
            return Err("n_major_providers cannot exceed n_providers".into());
        }
        if self.bsls_per_town == 0 {
            return Err("bsls_per_town must be positive".into());
        }
        for (name, v) in [
            ("overclaim_fraction", self.overclaim_fraction),
            ("challenge_rate_false", self.challenge_rate_false),
            ("challenge_rate_true", self.challenge_rate_true),
            ("correction_rate", self.correction_rate),
            ("asn_match_rate", self.asn_match_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        for (name, v) in [
            (
                "ookla_devices_per_served_bsl",
                self.ookla_devices_per_served_bsl,
            ),
            ("mlab_tests_per_served_hex", self.mlab_tests_per_served_hex),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SynthConfig::default().validate().is_ok());
        assert!(SynthConfig::tiny(1).validate().is_ok());
        assert!(SynthConfig::large(1).validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = SynthConfig {
            n_bsls: 0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            overclaim_fraction: 1.5,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            n_major_providers: SynthConfig::default().n_providers + 1,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            bsls_per_town: 0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            ookla_devices_per_served_bsl: f64::NAN,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            mlab_tests_per_served_hex: -1.0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_is_smaller_than_default() {
        assert!(SynthConfig::tiny(1).n_bsls < SynthConfig::default().n_bsls);
    }
}
