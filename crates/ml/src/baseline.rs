//! The naive random-guessing baseline the paper compares its classifier
//! against (§6.2: "we employ an evaluation strategy that compares our models'
//! performance to a naive 'random guessing' approach").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// A baseline that assigns uniformly random scores (optionally biased by the
/// training positive rate when predicting hard labels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomBaseline {
    seed: u64,
    positive_rate: f64,
}

impl RandomBaseline {
    /// Create a baseline calibrated to a training set's class balance.
    pub fn fit(train: &Dataset, seed: u64) -> Self {
        Self {
            seed,
            positive_rate: train.positive_rate(),
        }
    }

    /// The memorised training positive rate.
    pub fn positive_rate(&self) -> f64 {
        self.positive_rate
    }

    /// Uniformly random scores for every row of a dataset; expected ROC AUC
    /// is 0.5.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..data.n_rows())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect()
    }

    /// Hard 0/1 predictions drawn with probability equal to the training
    /// positive rate.
    pub fn predict_labels(&self, data: &Dataset) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        (0..data.n_rows())
            .map(|_| {
                if rng.gen_bool(self.positive_rate.clamp(0.0, 1.0)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::roc_auc;

    fn data(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..n {
            d.push_row(&[i as f32], if i % 3 == 0 { 1.0 } else { 0.0 });
        }
        d
    }

    #[test]
    fn auc_close_to_half() {
        let d = data(2000);
        let baseline = RandomBaseline::fit(&d, 9);
        let scores = baseline.predict_dataset(&d);
        let auc = roc_auc(d.labels(), &scores);
        assert!((auc - 0.5).abs() < 0.05, "baseline AUC {auc}");
    }

    #[test]
    fn label_rate_tracks_training_balance() {
        let d = data(3000);
        let baseline = RandomBaseline::fit(&d, 9);
        let labels = baseline.predict_labels(&d);
        let rate = labels.iter().filter(|&&l| l == 1.0).count() as f64 / labels.len() as f64;
        assert!((rate - baseline.positive_rate()).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data(100);
        let a = RandomBaseline::fit(&d, 1).predict_dataset(&d);
        let b = RandomBaseline::fit(&d, 1).predict_dataset(&d);
        assert_eq!(a, b);
    }
}
