//! Shared helpers for the benchmark harness.
//!
//! The Criterion benches and the `experiments` binary both need a generated
//! world and a prepared [`ExperimentSuite`]; this crate centralises the
//! configurations so every table and figure is regenerated from the same
//! synthetic United States.

use redsus_core::experiments::ExperimentSuite;
use synth::SynthConfig;

/// The configuration used by the `experiments` binary and the table/figure
/// benches: the default experiment scale.
pub fn experiment_config(seed: u64) -> SynthConfig {
    SynthConfig::experiment(seed)
}

/// A deliberately small configuration for benches that retrain models inside
/// the measured loop (the ablation benches).
pub fn micro_config(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        n_bsls: 2_500,
        n_providers: 24,
        n_major_providers: 4,
        ..SynthConfig::default()
    }
}

/// A small-but-representative configuration for benches that only prepare the
/// suite once and measure the per-experiment computation.
pub fn bench_config(seed: u64) -> SynthConfig {
    SynthConfig::tiny(seed)
}

/// Prepare a full experiment suite at bench scale.
pub fn bench_suite(seed: u64) -> ExperimentSuite {
    ExperimentSuite::prepare(&bench_config(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid() {
        assert!(experiment_config(1).validate().is_ok());
        assert!(micro_config(1).validate().is_ok());
        assert!(bench_config(1).validate().is_ok());
        assert!(micro_config(1).n_bsls < bench_config(1).n_bsls);
    }
}
