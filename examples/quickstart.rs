//! Quickstart: generate a small synthetic United States, build the labelled
//! dataset, train the classifier and evaluate it against the random baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use red_is_sus::core::experiments::{figure5a, figure5c, render_roc, ExperimentSuite};
use red_is_sus::core::labels::source_composition;
use red_is_sus::core::labels::LabelingOptions;
use red_is_sus::synth::SynthConfig;

fn main() {
    // 1. Generate a synthetic world and run the full pipeline (provider→ASN
    //    matching, speed-test attribution, labelling, features, training).
    let config = SynthConfig::tiny(42);
    println!(
        "generating a synthetic US with {} BSLs and {} providers...",
        config.n_bsls, config.n_providers
    );
    let suite = ExperimentSuite::prepare(&config);

    // 2. Inspect the labelled dataset composition (§4.3 of the paper).
    let labels = suite
        .ctx
        .build_labels(&suite.world, &LabelingOptions::default());
    println!("labelled observations: {}", labels.len());
    for (source, count) in source_composition(&labels) {
        println!("  {source:<14} {count}");
    }

    // 3. Evaluate on the paper's two main hold-outs.
    print!("{}", render_roc("observation holdout", figure5a(&suite)));
    print!("{}", render_roc("state holdout      ", figure5c(&suite)));

    // 4. Score an individual claim: the first held-out observation.
    let row = suite.observation_holdout.test_rows[0];
    let obs = &suite.matrix.observations[row];
    let p = suite
        .observation_holdout
        .model
        .predict_proba(suite.matrix.dataset.row(row));
    println!(
        "example claim: provider {} / {} / hex {} -> P(claim fails challenge) = {:.2}",
        obs.provider, obs.technology, obs.hex, p
    );
}
