//! Re-projecting quadkey tiles onto the hexagonal grid.
//!
//! The Ookla open dataset is keyed by ~500 m quadkey tiles while every other
//! dataset in the pipeline is keyed by resolution-8 hexes. Appendix D of the
//! paper describes the re-projection: most quadkey tiles fall entirely inside a
//! single hex, and tiles spanning several hexes are mapped to each of them.
//! This module reproduces that logic by sampling a small lattice of points
//! inside each tile and collecting the distinct hexes they fall in.

use std::collections::BTreeSet;

use crate::{HexCell, QuadTile, Resolution};

/// Number of sample points per axis used when covering a tile with hexes.
/// A 4×4 lattice is ample: a zoom-16 tile (~500 m) is smaller than a res-8 hex
/// (~900 m across), so it can overlap at most a handful of hexes.
const SAMPLES_PER_AXIS: usize = 4;

/// The set of hex cells (at `res`) that a quadkey tile overlaps, in sorted
/// order. The tile centre's hex is always included.
pub fn cover_tile_with_hexes(tile: &QuadTile, res: Resolution) -> Vec<HexCell> {
    let bounds = tile.bounds();
    let mut out: BTreeSet<HexCell> = BTreeSet::new();
    out.insert(HexCell::containing(&tile.center(), res));
    for i in 0..SAMPLES_PER_AXIS {
        for j in 0..SAMPLES_PER_AXIS {
            let u = (i as f64 + 0.5) / SAMPLES_PER_AXIS as f64;
            let v = (j as f64 + 0.5) / SAMPLES_PER_AXIS as f64;
            out.insert(HexCell::containing(&bounds.lerp(u, v), res));
        }
    }
    out.into_iter().collect()
}

/// Distribute a per-tile quantity over the hexes the tile overlaps.
///
/// Returns `(hex, share)` pairs where the shares are the tile's value divided
/// evenly among its covering hexes (so the total is conserved). This is how
/// Ookla test/device counts are moved onto the hex grid before computing the
/// per-hex service-coverage score.
pub fn reproject_to_hexes(tile: &QuadTile, value: f64, res: Resolution) -> Vec<(HexCell, f64)> {
    let hexes = cover_tile_with_hexes(tile, res);
    let share = value / hexes.len() as f64;
    hexes.into_iter().map(|h| (h, share)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NBM_RESOLUTION, OOKLA_ZOOM};
    use geoprim::LatLng;

    #[test]
    fn tile_covered_by_few_hexes() {
        let tile = QuadTile::containing(&LatLng::new(37.2296, -80.4139), OOKLA_ZOOM);
        let hexes = cover_tile_with_hexes(&tile, NBM_RESOLUTION);
        assert!(!hexes.is_empty());
        assert!(hexes.len() <= 6, "tile covered by {} hexes", hexes.len());
    }

    #[test]
    fn cover_includes_center_hex() {
        let tile = QuadTile::containing(&LatLng::new(40.0, -89.5), OOKLA_ZOOM);
        let hexes = cover_tile_with_hexes(&tile, NBM_RESOLUTION);
        let center_hex = HexCell::containing(&tile.center(), NBM_RESOLUTION);
        assert!(hexes.contains(&center_hex));
    }

    #[test]
    fn cover_is_sorted_and_unique() {
        let tile = QuadTile::containing(&LatLng::new(44.98, -93.26), OOKLA_ZOOM);
        let hexes = cover_tile_with_hexes(&tile, NBM_RESOLUTION);
        let mut sorted = hexes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(hexes, sorted);
    }

    #[test]
    fn reproject_conserves_total_value() {
        let tile = QuadTile::containing(&LatLng::new(33.75, -84.39), OOKLA_ZOOM);
        let shares = reproject_to_hexes(&tile, 42.0, NBM_RESOLUTION);
        let total: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((total - 42.0).abs() < 1e-9);
    }

    #[test]
    fn coarse_resolution_single_hex() {
        // At a very coarse resolution any single tile falls in exactly one hex.
        let tile = QuadTile::containing(&LatLng::new(38.0, -100.0), OOKLA_ZOOM);
        let hexes = cover_tile_with_hexes(&tile, Resolution::new(3).unwrap());
        assert_eq!(hexes.len(), 1);
    }
}
