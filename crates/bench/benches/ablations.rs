//! Ablation benches: the retraining-heavy experiments (Figure 7's label-source
//! ablation, Figure 8's JCC case study) and the design-choice ablations called
//! out in DESIGN.md (embedding dimensionality, dataset balancing).

use criterion::{criterion_group, criterion_main, Criterion};
use redsus_bench::micro_config;
use redsus_core::experiments as exp;
use redsus_core::features::{build_features, FeatureConfig};
use redsus_core::labels::LabelingOptions;
use redsus_core::pipeline::AnalysisContext;
use std::hint::black_box;
use synth::SynthUs;

fn bench_ablations(c: &mut Criterion) {
    let world = SynthUs::generate(&micro_config(11));
    let ctx = AnalysisContext::prepare(&world);
    let labels = ctx.build_labels(&world, &LabelingOptions::default());

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("fig7_dataset_ablation", |b| {
        b.iter(|| black_box(exp::figure7(&world, &ctx)))
    });
    group.bench_function("fig8_jcc_case_study", |b| {
        b.iter(|| black_box(exp::figure8(&world, &ctx)))
    });

    // Balancing ablation: labelled-set construction with and without the
    // likely-served balancing step.
    group.bench_function("labels_balanced", |b| {
        b.iter(|| black_box(ctx.build_labels(&world, &LabelingOptions::default())))
    });
    group.bench_function("labels_unbalanced_challenges_changes", |b| {
        b.iter(|| black_box(ctx.build_labels(&world, &LabelingOptions::challenges_and_changes())))
    });

    // Embedding-dimensionality ablation for the methodology feature.
    for dim in [32usize, 128, 384] {
        group.bench_function(format!("features_embedding_dim_{dim}"), |b| {
            let config = FeatureConfig {
                embedding_dim: dim,
                ..FeatureConfig::default()
            };
            b.iter(|| black_box(build_features(&world, &ctx, &labels, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
