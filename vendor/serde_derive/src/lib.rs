//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data model so the
//! types are ready for a real serialisation backend, but no code path
//! serialises at runtime yet and the build environment has no access to
//! crates.io. These derives therefore accept the full attribute syntax
//! (including `#[serde(...)]` field attributes) and expand to nothing; the
//! marker traits live in the sibling `serde` stub crate. Swapping both stubs
//! for the real crates is a two-line change in the workspace manifest.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and emits
/// no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
