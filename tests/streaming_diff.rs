//! The streaming diff engine's equivalence contract, end to end:
//!
//! * `StreamingDiff`/`diff_releases` produce the same change set as the
//!   batch `MapDiff::between` for random release pairs (including duplicate
//!   claim keys, empty releases and disjoint provider sets), at every chunk
//!   size and worker count,
//! * the synth world's `ReleaseEmitter` streams every release bit-identically
//!   to the materialised `build_releases` timeline,
//! * `DiffChain` folded over the whole timeline nets out to exactly the
//!   batch initial-vs-latest removals the labelling pipeline used to
//!   compute,
//! * and the bounded-memory claim is asserted, not assumed: the sequential
//!   merge never holds more than one chunk per stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_is_sus::bdc::stream::{diff_releases, DiffChain, DiffMode};
use red_is_sus::bdc::DayStamp;
use red_is_sus::bdc::{
    AvailabilityRecord, Bsl, ClaimChange, Fabric, LocationId, MapDiff, NbmRelease, ProviderId,
    ReleaseVersion, ServiceType, ShardableRelease, Technology,
};
use red_is_sus::geoprim::LatLng;
use red_is_sus::synth::{SynthConfig, SynthUs};

const N_LOCATIONS: u64 = 60;

fn fabric() -> Fabric {
    let bsls = (0..N_LOCATIONS)
        .map(|i| {
            Bsl::new(
                LocationId(i),
                LatLng::new(37.0 + i as f64 * 0.01, -80.0 - (i % 7) as f64 * 0.01),
                1,
                false,
                "VA",
            )
        })
        .collect();
    Fabric::new(bsls)
}

const TECHS: [Technology; 3] = [
    Technology::Cable,
    Technology::Fiber,
    Technology::UnlicensedFixedWireless,
];

/// A random record set: `n` records drawn over a provider/location/technology
/// grid small enough that duplicate claim keys occur regularly.
fn random_records(rng: &mut StdRng, n: usize, providers: &[u32]) -> Vec<AvailabilityRecord> {
    (0..n)
        .map(|_| {
            let provider = providers[rng.gen_range(0..providers.len())];
            AvailabilityRecord {
                provider: ProviderId(provider),
                location: LocationId(rng.gen_range(0..N_LOCATIONS)),
                technology: TECHS[rng.gen_range(0..TECHS.len())],
                max_down_mbps: [0.0, 25.0, 100.0, 940.0][rng.gen_range(0..4)],
                max_up_mbps: [0.0, 3.0, 20.0, 35.0][rng.gen_range(0..4)],
                low_latency: rng.gen_bool(0.8),
                service_type: ServiceType::Both,
            }
        })
        .collect()
}

fn release(records: Vec<AvailabilityRecord>, minor: u32, fabric: &Fabric) -> NbmRelease {
    NbmRelease::from_records(
        ReleaseVersion { major: 1, minor },
        DayStamp::initial_nbm_release().plus_days(14 * minor),
        records,
        fabric,
    )
}

fn sorted(mut changes: Vec<ClaimChange>) -> Vec<ClaimChange> {
    changes.sort_unstable();
    changes
}

/// Assert the streaming engine equals the batch engine for one release pair,
/// across chunk sizes and schedules.
fn assert_stream_matches_batch(old: &NbmRelease, new: &NbmRelease, label: &str) {
    let batch = sorted(MapDiff::between(old, new).changes().to_vec());
    for chunk in [1, 3, 64, 100_000] {
        for mode in [
            DiffMode::Sequential,
            DiffMode::Threads(2),
            DiffMode::Threads(5),
        ] {
            let outcome = diff_releases(old, new, chunk, mode);
            assert_eq!(
                sorted(outcome.changes.clone()),
                batch,
                "{label}: streaming (chunk {chunk}, {mode:?}) != batch"
            );
            if mode == DiffMode::Sequential {
                // The NbmRelease adapter owns full sorted copies of both
                // releases and the stats admit it: the peak is the backing
                // storage plus at most one in-flight chunk per stream. (The
                // strict two-chunk bound holds for genuinely streaming
                // sources — see the DiffChain-over-emitter test below.)
                let backing = old.records().len() + new.records().len();
                assert!(
                    outcome.stats.peak_resident_entries <= backing + 2 * chunk,
                    "{label}: peak {} exceeds backing {backing} + two chunks of {chunk}",
                    outcome.stats.peak_resident_entries
                );
                assert!(
                    outcome.stats.peak_resident_entries >= backing.min(1),
                    "{label}: peak must count the in-memory adapter's backing"
                );
            }
        }
    }
}

#[test]
fn streaming_diff_equals_batch_on_random_release_pairs() {
    // Seeded-loop property test (the repo's stand-in for proptest): random
    // pairs with overlapping claim grids and frequent duplicate keys.
    let f = fabric();
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xd1ff + seed);
        let providers: Vec<u32> = (1..=rng.gen_range(1..5u32)).collect();
        let n_old = rng.gen_range(0..300);
        let n_new = rng.gen_range(0..300);
        let old_records = random_records(&mut rng, n_old, &providers);
        let new_records = random_records(&mut rng, n_new, &providers);
        let old = release(old_records, 0, &f);
        let new = release(new_records, 1, &f);
        assert_stream_matches_batch(&old, &new, &format!("seed {seed}"));
    }
}

#[test]
fn streaming_diff_handles_empty_and_disjoint_releases() {
    let f = fabric();
    let mut rng = StdRng::seed_from_u64(99);
    let some = random_records(&mut rng, 150, &[1, 2]);
    let disjoint = random_records(&mut rng, 150, &[7, 8]);

    let empty_old = release(vec![], 0, &f);
    let empty_new = release(vec![], 1, &f);
    assert_stream_matches_batch(&empty_old, &empty_new, "both empty");

    let full_new = release(some.clone(), 1, &f);
    assert_stream_matches_batch(&empty_old, &full_new, "empty -> full");

    let full_old = release(some.clone(), 0, &f);
    assert_stream_matches_batch(&full_old, &empty_new, "full -> empty");

    // Disjoint provider sets: everything removed, everything added.
    let other = release(disjoint, 1, &f);
    assert_stream_matches_batch(&full_old, &other, "disjoint providers");
    let outcome = diff_releases(&full_old, &other, 64, DiffMode::Sequential);
    let keys_old: std::collections::BTreeSet<_> =
        full_old.records().iter().map(|r| r.claim_key()).collect();
    let keys_new: std::collections::BTreeSet<_> =
        other.records().iter().map(|r| r.claim_key()).collect();
    let (added, removed, modified) = outcome.counts();
    assert_eq!(removed, keys_old.len());
    assert_eq!(added, keys_new.len());
    assert_eq!(modified, 0);
}

#[test]
fn emitter_streams_match_materialised_releases_in_a_generated_world() {
    let world = SynthUs::generate(&SynthConfig::tiny(21));
    let emitter = world.release_emitter();
    assert_eq!(emitter.n_releases(), world.releases.len());
    for (k, materialised) in world.releases.iter().enumerate() {
        // Stream-diff the emitted view against the materialised release:
        // bit-identical claims mean an empty diff.
        let outcome = diff_releases(&emitter.release(k), materialised, 128, DiffMode::Sequential);
        assert!(
            outcome.changes.is_empty(),
            "release {k}: emitted view differs from materialised release: {:?}",
            &outcome.changes[..outcome.changes.len().min(5)]
        );
    }
}

#[test]
fn diff_chain_over_emitter_equals_batch_initial_vs_latest() {
    let world = SynthUs::generate(&SynthConfig::tiny(21));
    let emitter = world.release_emitter();
    let mut chain = DiffChain::new(ShardableRelease::version(&emitter.release(0)));
    for k in 0..emitter.n_releases() - 1 {
        chain.extend_with(
            &emitter.release(k),
            &emitter.release(k + 1),
            256,
            DiffMode::Sequential,
        );
    }
    let batch = MapDiff::between(world.initial_release(), world.latest_release());
    let batch_removed: Vec<ClaimChange> = batch.removed().copied().collect();
    assert!(!batch_removed.is_empty(), "tiny world has no removals");
    assert_eq!(
        chain.removal_evidence(),
        batch_removed,
        "chained streaming evidence != batch initial-vs-latest removals"
    );
    // The same evidence the prepared pipeline context carries.
    let ctx = red_is_sus::core::pipeline::AnalysisContext::prepare(&world);
    assert_eq!(ctx.diff_chain.removal_evidence(), batch_removed);
    // Bounded memory: the chain never held more than one chunk per stream.
    assert!(chain.peak_resident_entries() <= 2 * 256);
}

#[test]
fn chain_worker_count_is_a_pure_scheduling_decision() {
    let world = SynthUs::generate(&SynthConfig::tiny(33));
    let emitter = world.release_emitter();
    let run = |mode: DiffMode| {
        let mut chain = DiffChain::new(ShardableRelease::version(&emitter.release(0)));
        for k in 0..emitter.n_releases() - 1 {
            chain.extend_with(&emitter.release(k), &emitter.release(k + 1), 128, mode);
        }
        chain.removal_evidence()
    };
    let base = run(DiffMode::Sequential);
    for mode in [
        DiffMode::Parallel,
        DiffMode::Threads(2),
        DiffMode::Threads(7),
    ] {
        assert_eq!(run(mode), base, "evidence differs under {mode:?}");
    }
}
