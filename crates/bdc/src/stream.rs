//! Streaming release diffs: walking two NBM releases in claim-key order at
//! bounded memory.
//!
//! [`MapDiff::between`](crate::MapDiff::between) materialises both releases
//! as `BTreeMap`s, which is fine for the synthetic worlds the tests use but
//! cannot scale to the national map (~115M BSLs × dozens of bi-weekly
//! releases). This module provides the streaming counterpart:
//!
//! * [`ClaimEntry`] — the compact `(claim key, speeds)` projection of an
//!   availability record the diff engine operates on.
//! * [`ReleaseStream`] — a source of claim-key-ordered chunks of one
//!   release's entries; implementors hold at most one chunk at a time.
//! * [`StreamingDiff`] — a merge-join over two sorted streams, emitted as an
//!   iterator of [`ClaimChange`]s. Peak resident entries are tracked so the
//!   bounded-memory contract is observable, not just claimed.
//! * [`diff_releases`] — the engine entry point: sequential merge-join or a
//!   per-provider sharded fan-out across `std::thread::scope` workers under
//!   a [`DiffMode`] mirroring `synth::GenMode`'s contract (thread count is a
//!   scheduling decision, never a semantic one).
//! * [`DiffChain`] — folds the pairwise diffs of N successive releases into
//!   cumulative per-provider removal evidence (the §4.1.3 labelling signal),
//!   with a per-pair execution report.
//!
//! Both engines share one canonicalisation rule ([`ClaimEntry::wins_over`])
//! for duplicate claim keys and compare speeds by exact bit pattern, so the
//! streaming path is bit-identical to the batch path — a contract pinned by
//! the equivalence tests in `tests/streaming_diff.rs`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use obs::{Counter, Gauge, MetricsRegistry};

use crate::diff::{ClaimChange, ClaimChangeKind, MapDiff};
use crate::fabric::Bsl;
use crate::filing::AvailabilityRecord;
use crate::ids::ProviderId;
use crate::nbm::{ClaimKey, ReleaseVersion};

/// Default number of entries per streamed chunk. Large enough that chunk
/// bookkeeping is noise, small enough that two in-flight chunks stay well
/// under a megabyte.
pub const DEFAULT_DIFF_CHUNK: usize = 4096;

/// The compact projection of an availability record the diff engine operates
/// on: the claim key plus the filed speeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimEntry {
    pub key: ClaimKey,
    pub max_down_mbps: f64,
    pub max_up_mbps: f64,
}

impl ClaimEntry {
    /// Project a full availability record down to its diff-relevant fields.
    pub fn from_record(r: &AvailabilityRecord) -> Self {
        Self {
            key: r.claim_key(),
            max_down_mbps: r.max_down_mbps,
            max_up_mbps: r.max_up_mbps,
        }
    }

    /// The exact bit patterns of the speeds. Diffing compares these, not the
    /// float values: NaN therefore equals an identical NaN (instead of
    /// flagging the claim `Modified` forever) and `0.0`/`-0.0` are
    /// deterministically distinct.
    pub fn speed_bits(&self) -> (u64, u64) {
        (self.max_down_mbps.to_bits(), self.max_up_mbps.to_bits())
    }

    /// Canonical winner among entries sharing a claim key: the
    /// lexicographically greatest `(down, up)` pair under `f64::total_cmp`.
    /// Both the batch and streaming engines resolve duplicates with this
    /// rule, so a release with duplicate keys still diffs deterministically
    /// (instead of depending on record order).
    pub fn wins_over(&self, other: &Self) -> bool {
        speed_pair_wins(
            (self.max_down_mbps, self.max_up_mbps),
            (other.max_down_mbps, other.max_up_mbps),
        )
    }
}

/// The one `(down, up)` tie-break the crate uses wherever two speed claims
/// compete: lexicographically greater under `f64::total_cmp` wins. Shared by
/// duplicate-key canonicalisation (batch and streaming diffs) and by the
/// hex-level aggregation in [`crate::nbm`], so the rules can never drift
/// apart.
pub fn speed_pair_wins(candidate: (f64, f64), incumbent: (f64, f64)) -> bool {
    candidate
        .0
        .total_cmp(&incumbent.0)
        .then(candidate.1.total_cmp(&incumbent.1))
        .is_gt()
}

/// A source of one release's claim entries, yielded as claim-key-ordered
/// chunks.
///
/// Contract: concatenating all chunks gives every entry of the release in
/// non-decreasing claim-key order (duplicate keys are allowed and must be
/// adjacent; the consumer canonicalises them via [`ClaimEntry::wins_over`]).
/// Implementors should hold at most one chunk of entries in memory at a
/// time — that is the entire point of the trait.
pub trait ReleaseStream {
    /// The release being streamed.
    fn version(&self) -> ReleaseVersion;

    /// The next chunk, or `None` when the release is exhausted. Returned
    /// chunks must be non-empty.
    fn next_chunk(&mut self) -> Option<Vec<ClaimEntry>>;

    /// Entries held by the stream's *backing storage*, beyond the chunks it
    /// has already yielded. Genuinely streaming sources (a file reader, the
    /// synth `ReleaseEmitter`'s views over a shared base) return 0 — the
    /// default; in-memory adapters that own a full copy of the release
    /// ([`SortedClaimStream`]) must report it, so the peak-residency
    /// statistics the diff engine publishes stay honest about which paths
    /// are actually bounded.
    fn resident_entries(&self) -> usize {
        0
    }
}

/// An in-memory, pre-sorted claim stream — the [`ReleaseStream`] adapter for
/// data that already lives in memory (an `NbmRelease`, a test vector).
///
/// This adapter owns a full sorted copy of its release, and says so through
/// [`ReleaseStream::resident_entries`]: diffing through it is convenient but
/// not memory-bounded. The bounded path is a source that shares one backing
/// store across streams, like the synth crate's `ReleaseEmitter`.
#[derive(Debug, Clone)]
pub struct SortedClaimStream {
    version: ReleaseVersion,
    entries: Vec<ClaimEntry>,
    pos: usize,
    chunk_size: usize,
}

impl SortedClaimStream {
    /// Build a stream from entries in arbitrary order; they are sorted by
    /// claim key here (duplicates stay adjacent, in input order).
    pub fn new(version: ReleaseVersion, mut entries: Vec<ClaimEntry>, chunk_size: usize) -> Self {
        entries.sort_by_key(|e| e.key);
        Self {
            version,
            entries,
            pos: 0,
            chunk_size: chunk_size.max(1),
        }
    }

    /// Total number of entries the stream will yield.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the stream has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl ReleaseStream for SortedClaimStream {
    fn version(&self) -> ReleaseVersion {
        self.version
    }

    fn next_chunk(&mut self) -> Option<Vec<ClaimEntry>> {
        if self.pos >= self.entries.len() {
            return None;
        }
        let end = (self.pos + self.chunk_size).min(self.entries.len());
        let chunk = self.entries[self.pos..end].to_vec();
        self.pos = end;
        Some(chunk)
    }

    fn resident_entries(&self) -> usize {
        self.entries.len()
    }
}

/// A release that can hand out claim streams for the whole release or for a
/// single provider — everything [`diff_releases`] needs to run either the
/// sequential merge-join or the per-provider sharded fan-out.
///
/// Because claim keys order by provider first, concatenating per-provider
/// diffs in provider order is identical to diffing the full streams; that is
/// what makes the sharding a pure scheduling decision.
pub trait ShardableRelease: Sync {
    type Stream: ReleaseStream + Send;

    /// The release's version.
    fn version(&self) -> ReleaseVersion;

    /// Providers with at least one claim, in ascending id order.
    fn providers(&self) -> Vec<ProviderId>;

    /// Stream of every claim in the release.
    fn full_stream(&self, chunk_size: usize) -> Self::Stream;

    /// Stream of one provider's claims.
    fn provider_stream(&self, provider: ProviderId, chunk_size: usize) -> Self::Stream;
}

/// Thread-safe peak-residency accounting for shard streams: the same honest
/// bookkeeping [`StreamStats::peak_resident_entries`] gives the diff engine,
/// generalised so every streaming stage (fabric, claims, speed tests, labels,
/// features) can report what it actually held resident rather than what it
/// hoped to.
///
/// `acquire`/`release` track transient shard buffers; [`ResidencyMeter::pin`]
/// records long-lived structures (an index that stays resident for the rest
/// of the run). The peak is monotone and survives release, so a stage report
/// reflects the worst moment, not the final state.
#[derive(Debug, Default)]
pub struct ResidencyMeter {
    current: AtomicUsize,
    peak: AtomicUsize,
    stage_peak: AtomicUsize,
    instruments: OnceLock<MeterInstruments>,
}

/// Telemetry instruments mirroring a [`ResidencyMeter`]'s traffic into a
/// metrics registry: acquire/release entry counters plus live-current and
/// run-peak gauges. Pure observation — attaching instruments never changes
/// what the meter itself reports.
#[derive(Debug, Clone)]
pub struct MeterInstruments {
    /// Total entries ever acquired (pins included).
    pub acquired_entries: Counter,
    /// Total entries released again.
    pub released_entries: Counter,
    /// Entries resident right now.
    pub current_entries: Gauge,
    /// Run-wide peak residency.
    pub peak_entries: Gauge,
}

impl MeterInstruments {
    /// Build the standard instrument set in `registry` under
    /// `<prefix>_acquired_entries_total` / `<prefix>_released_entries_total`
    /// / `<prefix>_current_entries` / `<prefix>_peak_entries`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        Self {
            acquired_entries: registry.counter(
                &format!("{prefix}_acquired_entries_total"),
                "Entries acquired (made resident) by the shard streams.",
                &[],
            ),
            released_entries: registry.counter(
                &format!("{prefix}_released_entries_total"),
                "Entries released (freed) by the shard streams.",
                &[],
            ),
            current_entries: registry.gauge(
                &format!("{prefix}_current_entries"),
                "Entries resident right now.",
                &[],
            ),
            peak_entries: registry.gauge(
                &format!("{prefix}_peak_entries"),
                "Run-wide peak resident entries.",
                &[],
            ),
        }
    }
}

impl ResidencyMeter {
    /// A meter with nothing resident.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach telemetry instruments. First caller wins; later attachments
    /// are ignored so shared meters cannot be re-pointed mid-run.
    pub fn attach_instruments(&self, instruments: MeterInstruments) {
        let _ = self.instruments.set(instruments);
    }

    /// Note `entries` newly resident (a pulled shard, a growing buffer).
    pub fn acquire(&self, entries: usize) {
        let now = self.current.fetch_add(entries, Ordering::Relaxed) + entries;
        let peak = self.peak.fetch_max(now, Ordering::Relaxed).max(now);
        self.stage_peak.fetch_max(now, Ordering::Relaxed);
        if let Some(instruments) = self.instruments.get() {
            instruments.acquired_entries.add(entries as u64);
            instruments.current_entries.set(now as f64);
            instruments.peak_entries.set(peak as f64);
        }
    }

    /// Note `entries` dropped again (a shard consumed and freed).
    pub fn release(&self, entries: usize) {
        let now = self.current.fetch_sub(entries, Ordering::Relaxed) - entries;
        if let Some(instruments) = self.instruments.get() {
            instruments.released_entries.add(entries as u64);
            instruments.current_entries.set(now as f64);
        }
    }

    /// Note `entries` that stay resident from now on (an index kept for the
    /// rest of the run). Equivalent to an `acquire` with no matching
    /// `release`; named separately so call sites state their intent.
    pub fn pin(&self, entries: usize) {
        self.acquire(entries);
    }

    /// Entries resident right now.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// The highest number of entries ever resident at once.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// The highest residency since the last call to this method (or since the
    /// meter was created), then reset the watermark to the current residency.
    /// Lets a multi-stage run report an honest per-stage peak from one shared
    /// meter while [`ResidencyMeter::peak`] stays the run-wide high water.
    pub fn take_stage_peak(&self) -> usize {
        let now = self.current.load(Ordering::Relaxed);
        self.stage_peak.swap(now, Ordering::Relaxed).max(now)
    }
}

/// A source of data that is *regenerated or read shard-by-shard on demand*
/// instead of being stored: the `ReleaseEmitter` pattern generalised. A shard
/// is an indexed, self-contained batch (one town's BSLs, one provider's
/// claims, one hex's speed-test tile); calling [`ShardStream::shard`] twice
/// with the same index yields the same bytes, so consumers may pull shards in
/// any order, in parallel, or twice — scheduling is never semantic, exactly
/// as with [`map_shards`].
///
/// [`ShardStream::resident_entries`] is the honesty contract inherited from
/// [`ReleaseStream`]: a genuinely streaming source reports only the bounded
/// state it keeps between calls (an offset table, an RNG key), while an
/// in-memory adapter must admit its full backing copy.
pub trait ShardStream: Sync {
    /// What one shard yields.
    type Item: Send;

    /// Number of shards; valid indices are `0..shard_count()`.
    fn shard_count(&self) -> usize;

    /// Produce shard `index` from scratch. Pure: same index, same bytes.
    fn shard(&self, index: usize) -> Vec<Self::Item>;

    /// Entries the stream itself keeps resident between `shard` calls (its
    /// backing storage or index), for peak-residency accounting.
    fn resident_entries(&self) -> usize {
        0
    }
}

/// A shard-streamed view of the BSL fabric: one shard per town-like cluster,
/// concatenating to the full fabric in location-id order.
pub trait FabricStream: ShardStream<Item = Bsl> {
    /// Total number of BSLs across all shards (u64: the national fabric and
    /// beyond must not be clamped to a 32-bit count).
    fn total_locations(&self) -> u64;
}

/// A shard-streamed view of location-level claims: one shard per provider,
/// ascending by provider id, each shard claim-key-ordered — so concatenating
/// all shards yields the sorted claim base of the initial release.
pub trait ClaimStream: ShardStream<Item = ClaimEntry> {
    /// Providers backing the shards, ascending; `providers()[i]` owns shard
    /// `i`.
    fn providers(&self) -> Vec<ProviderId>;
}

/// A shard-streamed source of speed-test records (Ookla tiles, MLab tests —
/// the item type is the implementor's). A marker refinement of
/// [`ShardStream`]: implementors promise shards arrive in the canonical
/// generation order of the dataset (sorted-hex order for tiles, provider
/// order for tests), so collecting the stream reproduces the materialised
/// dataset byte for byte.
pub trait SpeedTestStream: ShardStream {}

/// Materialise a shard stream: pull every shard through [`map_shards`] and
/// concatenate in shard order. This is the thin adapter that turns any
/// streaming source back into the resident representation — the generators'
/// batch paths are exactly this call, so the two paths cannot drift.
pub fn collect_shards<S: ShardStream>(stream: &S, workers: usize) -> Vec<S::Item> {
    let indices: Vec<usize> = (0..stream.shard_count()).collect();
    map_shards(workers, &indices, |_, &i| stream.shard(i))
        .into_iter()
        .flatten()
        .collect()
}

/// Drive a shard stream to exhaustion *without* keeping it: each shard is
/// produced, handed to `consume` in shard order, then dropped, with the
/// transient residency metered. This is the bounded-memory counterpart of
/// [`collect_shards`] for stages that only need one pass.
pub fn drain_shards<S: ShardStream>(
    stream: &S,
    meter: &ResidencyMeter,
    mut consume: impl FnMut(usize, Vec<S::Item>),
) {
    meter.acquire(stream.resident_entries());
    for i in 0..stream.shard_count() {
        let shard = stream.shard(i);
        meter.acquire(shard.len());
        let n = shard.len();
        consume(i, shard);
        meter.release(n);
    }
    meter.release(stream.resident_entries());
}

/// How [`diff_releases`] schedules the per-provider merge: every mode
/// produces bit-identical changes, the mode only decides how many
/// `std::thread::scope` workers the provider shards fan across.
///
/// This is the workspace's one scheduling-mode enum — the synth crate
/// re-exports it as `GenMode` for the sharded world generator, so both
/// engines share a single `worker_count` resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffMode {
    /// One merge-join over the full streams on the calling thread.
    Sequential,
    /// One worker per available core (degrades to `Sequential` on
    /// single-core hosts, where extra workers are pure overhead).
    #[default]
    Parallel,
    /// Exactly `n` workers, even on single-core hosts — the knob the
    /// determinism tests use to force the threaded path everywhere.
    Threads(usize),
}

impl DiffMode {
    /// The number of shard workers this mode resolves to on this host.
    pub fn worker_count(self) -> usize {
        match self {
            DiffMode::Sequential => 1,
            DiffMode::Threads(n) => n.max(1),
            DiffMode::Parallel => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Memory/IO statistics of one streaming diff.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Total chunks pulled from both streams.
    pub chunks_pulled: usize,
    /// Peak number of claim entries resident at once: in-flight chunks
    /// *plus* whatever backing storage the streams themselves admit to
    /// holding ([`ReleaseStream::resident_entries`]) — so an in-memory
    /// adapter reports its full copy and only genuinely streaming sources
    /// show the two-chunk bound. Exact for the sequential merge; for the
    /// sharded merge it is the upper bound `workers × max per-shard peak`.
    pub peak_resident_entries: usize,
    /// Workers the merge fanned across (1 for the sequential path), clamped
    /// to the number of provider shards.
    pub workers: usize,
}

/// Pulls chunks from a [`ReleaseStream`] one at a time and presents a
/// peek/advance cursor over the individual entries, canonicalising runs of
/// duplicate keys as it goes.
struct ChunkCursor<S: ReleaseStream> {
    stream: S,
    chunk: Vec<ClaimEntry>,
    pos: usize,
    done: bool,
    chunks_pulled: usize,
}

impl<S: ReleaseStream> ChunkCursor<S> {
    fn new(stream: S) -> Self {
        Self {
            stream,
            chunk: Vec::new(),
            pos: 0,
            done: false,
            chunks_pulled: 0,
        }
    }

    /// The next entry's key without consuming it; pulls the next chunk when
    /// the current one is exhausted.
    fn peek_key(&mut self) -> Option<ClaimKey> {
        loop {
            if self.pos < self.chunk.len() {
                return Some(self.chunk[self.pos].key);
            }
            if self.done {
                return None;
            }
            match self.stream.next_chunk() {
                Some(next) => {
                    debug_assert!(!next.is_empty(), "ReleaseStream yielded an empty chunk");
                    debug_assert!(
                        next.windows(2).all(|w| w[0].key <= w[1].key),
                        "ReleaseStream chunk not claim-key-ordered"
                    );
                    debug_assert!(
                        self.chunk.last().is_none_or(|last| {
                            next.first().is_none_or(|first| last.key <= first.key)
                        }),
                        "ReleaseStream chunks not ordered across the boundary"
                    );
                    self.chunks_pulled += 1;
                    self.chunk = next;
                    self.pos = 0;
                }
                None => {
                    self.done = true;
                    self.chunk.clear();
                    self.pos = 0;
                }
            }
        }
    }

    /// Consume the full run of entries sharing the next key and return the
    /// canonical winner among them.
    fn next_canonical(&mut self) -> Option<ClaimEntry> {
        let key = self.peek_key()?;
        let mut best = self.chunk[self.pos];
        self.pos += 1;
        while let Some(next_key) = self.peek_key() {
            if next_key != key {
                break;
            }
            let candidate = self.chunk[self.pos];
            self.pos += 1;
            if candidate.wins_over(&best) {
                best = candidate;
            }
        }
        Some(best)
    }

    /// Entries currently resident because of this stream: the in-flight
    /// chunk plus the stream's own backing storage.
    fn resident(&self) -> usize {
        self.chunk.len() + self.stream.resident_entries()
    }
}

/// A merge-join of two claim-key-ordered release streams, yielding the
/// [`ClaimChange`]s between them in global claim-key order.
///
/// Holds at most one chunk per stream; [`StreamingDiff::stats`] reports the
/// observed peak so tests and benches can assert the bound instead of
/// trusting it.
pub struct StreamingDiff<A: ReleaseStream, B: ReleaseStream> {
    old: ChunkCursor<A>,
    new: ChunkCursor<B>,
    from: ReleaseVersion,
    to: ReleaseVersion,
    peak_resident: usize,
}

impl<A: ReleaseStream, B: ReleaseStream> StreamingDiff<A, B> {
    /// Diff `old` against `new`.
    pub fn new(old: A, new: B) -> Self {
        let from = old.version();
        let to = new.version();
        Self {
            old: ChunkCursor::new(old),
            new: ChunkCursor::new(new),
            from,
            to,
            peak_resident: 0,
        }
    }

    /// Version of the older release.
    pub fn from_version(&self) -> ReleaseVersion {
        self.from
    }

    /// Version of the newer release.
    pub fn to_version(&self) -> ReleaseVersion {
        self.to
    }

    /// Statistics observed so far (exact once the iterator is exhausted).
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            chunks_pulled: self.old.chunks_pulled + self.new.chunks_pulled,
            peak_resident_entries: self.peak_resident,
            workers: 1,
        }
    }

    fn change(&self, key: ClaimKey, kind: ClaimChangeKind) -> ClaimChange {
        ClaimChange {
            provider: key.0,
            location: key.1,
            technology: key.2,
            kind,
        }
    }

    fn note_residency(&mut self) {
        self.peak_resident = self
            .peak_resident
            .max(self.old.resident() + self.new.resident());
    }
}

impl<A: ReleaseStream, B: ReleaseStream> Iterator for StreamingDiff<A, B> {
    type Item = ClaimChange;

    fn next(&mut self) -> Option<ClaimChange> {
        loop {
            let (ka, kb) = (self.old.peek_key(), self.new.peek_key());
            self.note_residency();
            match (ka, kb) {
                (None, None) => return None,
                (Some(_), None) => {
                    let e = self.old.next_canonical()?;
                    return Some(self.change(e.key, ClaimChangeKind::Removed));
                }
                (None, Some(_)) => {
                    let e = self.new.next_canonical()?;
                    return Some(self.change(e.key, ClaimChangeKind::Added));
                }
                (Some(ka), Some(kb)) => match ka.cmp(&kb) {
                    std::cmp::Ordering::Less => {
                        let e = self.old.next_canonical()?;
                        return Some(self.change(e.key, ClaimChangeKind::Removed));
                    }
                    std::cmp::Ordering::Greater => {
                        let e = self.new.next_canonical()?;
                        return Some(self.change(e.key, ClaimChangeKind::Added));
                    }
                    std::cmp::Ordering::Equal => {
                        let a = self.old.next_canonical()?;
                        let b = self.new.next_canonical()?;
                        if a.speed_bits() != b.speed_bits() {
                            return Some(self.change(a.key, ClaimChangeKind::Modified));
                        }
                        // Unchanged claim: keep walking.
                    }
                },
            }
        }
    }
}

/// The result of one streamed release diff: every change in claim-key order,
/// plus the observed execution statistics.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    pub from: ReleaseVersion,
    pub to: ReleaseVersion,
    /// Changes in ascending claim-key order (ties impossible: one change per
    /// key).
    pub changes: Vec<ClaimChange>,
    pub stats: StreamStats,
    pub wall: Duration,
}

impl DiffOutcome {
    /// Count of changes of each kind, as `(added, removed, modified)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.changes {
            match c.kind {
                ClaimChangeKind::Added => counts.0 += 1,
                ClaimChangeKind::Removed => counts.1 += 1,
                ClaimChangeKind::Modified => counts.2 += 1,
            }
        }
        counts
    }

    /// View the outcome as a [`MapDiff`] (for comparisons with the batch
    /// engine and for the consumers of its accessors).
    pub fn into_map_diff(self) -> MapDiff {
        MapDiff::from_changes(self.from, self.to, self.changes)
    }
}

/// Fan `f` over contiguous chunks of `items` across `workers` scoped
/// threads, returning the results in item order. `f` receives
/// `(shard_index, &item)` where `shard_index` is the item's position in
/// `items` — the same values under every schedule, so as long as `f` is
/// pure the output is bit-identical for any worker count. Degrades to a
/// plain sequential map when one worker (or one item) is available.
///
/// This is the workspace's one scoped-thread fan-out primitive: the synth
/// crate's sharded world generator re-exports it as `synth::shard::map_shards`.
pub fn map_shards<I, T, F>(workers: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, chunk_items)| {
                scope.spawn(move || {
                    chunk_items
                        .iter()
                        .enumerate()
                        .map(|(j, it)| f(ci * chunk + j, it))
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Diff two releases through the streaming engine.
///
/// `Sequential` (or any single-worker resolution) runs one merge-join over
/// the full streams. Multi-worker modes shard the merge per provider: each
/// worker diffs one provider's streams, and the per-provider change lists are
/// concatenated in provider order — bit-identical to the sequential merge
/// because claim keys order by provider first.
pub fn diff_releases<A, B>(old: &A, new: &B, chunk_size: usize, mode: DiffMode) -> DiffOutcome
where
    A: ShardableRelease,
    B: ShardableRelease,
{
    let start = Instant::now();
    let workers = mode.worker_count();
    let (from, to) = (old.version(), new.version());
    if workers <= 1 {
        let mut diff = StreamingDiff::new(old.full_stream(chunk_size), new.full_stream(chunk_size));
        let changes: Vec<ClaimChange> = diff.by_ref().collect();
        return DiffOutcome {
            from,
            to,
            changes,
            stats: diff.stats(),
            wall: start.elapsed(),
        };
    }

    // Union of both releases' providers, ascending (BTreeSet dedups).
    let providers: Vec<ProviderId> = old
        .providers()
        .into_iter()
        .chain(new.providers())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // `map_shards` never spawns more workers than there are shards; report
    // the clamped count so the stats bound reflects what could actually be
    // resident at once.
    let workers = workers.min(providers.len().max(1));
    let shard_results = map_shards(workers, &providers, |_, &provider| {
        let mut diff = StreamingDiff::new(
            old.provider_stream(provider, chunk_size),
            new.provider_stream(provider, chunk_size),
        );
        let changes: Vec<ClaimChange> = diff.by_ref().collect();
        (changes, diff.stats())
    });
    let mut changes = Vec::new();
    let mut chunks_pulled = 0;
    let mut max_shard_peak = 0;
    for (shard_changes, stats) in shard_results {
        changes.extend(shard_changes);
        chunks_pulled += stats.chunks_pulled;
        max_shard_peak = max_shard_peak.max(stats.peak_resident_entries);
    }
    DiffOutcome {
        from,
        to,
        changes,
        stats: StreamStats {
            chunks_pulled,
            // Upper bound: every worker holds at most one chunk per stream.
            peak_resident_entries: max_shard_peak * workers,
            workers,
        },
        wall: start.elapsed(),
    }
}

/// Execution report of one pairwise diff absorbed by a [`DiffChain`].
#[derive(Debug, Clone)]
pub struct DiffPairReport {
    pub from: ReleaseVersion,
    pub to: ReleaseVersion,
    pub added: usize,
    pub removed: usize,
    pub modified: usize,
    pub stats: StreamStats,
    pub wall: Duration,
}

/// Folds the pairwise diffs of N successive releases into cumulative removal
/// evidence: the claims present in the first release that are absent from the
/// last one — exactly the set `MapDiff::between(first, last).removed()`
/// recovers, but computed one release pair at a time at bounded memory.
///
/// The fold is restoration-aware: a claim removed in one release and re-added
/// in a later one is not evidence, and a claim added mid-chain and removed
/// again never was. Memory is bounded by the *churn* between releases (the
/// removed/added key sets), never by release size.
#[derive(Debug, Clone)]
pub struct DiffChain {
    from: ReleaseVersion,
    to: ReleaseVersion,
    /// Claims of the initial release currently absent from the latest seen.
    removed: BTreeSet<ClaimKey>,
    /// Claims absent from the initial release currently present.
    added: BTreeSet<ClaimKey>,
    pairs: Vec<DiffPairReport>,
}

impl DiffChain {
    /// An empty chain anchored at the initial release.
    pub fn new(initial: ReleaseVersion) -> Self {
        Self {
            from: initial,
            to: initial,
            removed: BTreeSet::new(),
            added: BTreeSet::new(),
            pairs: Vec::new(),
        }
    }

    /// Version of the chain's initial release.
    pub fn from_version(&self) -> ReleaseVersion {
        self.from
    }

    /// Version of the most recent release folded in.
    pub fn to_version(&self) -> ReleaseVersion {
        self.to
    }

    /// Fold one pairwise diff outcome into the chain. The outcome's `from`
    /// must continue where the chain currently ends.
    pub fn absorb(&mut self, outcome: DiffOutcome) {
        assert_eq!(
            outcome.from, self.to,
            "DiffChain fed a non-contiguous release pair: chain ends at {}, diff starts at {}",
            self.to, outcome.from
        );
        let (added, removed, modified) = outcome.counts();
        for change in &outcome.changes {
            let key = (change.provider, change.location, change.technology);
            match change.kind {
                ClaimChangeKind::Removed => {
                    // A claim added mid-chain and removed again nets out.
                    if !self.added.remove(&key) {
                        self.removed.insert(key);
                    }
                }
                ClaimChangeKind::Added => {
                    // A removed claim coming back is a restoration, not a new
                    // claim.
                    if !self.removed.remove(&key) {
                        self.added.insert(key);
                    }
                }
                ClaimChangeKind::Modified => {}
            }
        }
        self.to = outcome.to;
        self.pairs.push(DiffPairReport {
            from: outcome.from,
            to: outcome.to,
            added,
            removed,
            modified,
            stats: outcome.stats,
            wall: outcome.wall,
        });
    }

    /// Convenience: stream-diff `new` against the chain's current end and
    /// absorb the result.
    pub fn extend_with<A, B>(&mut self, old: &A, new: &B, chunk_size: usize, mode: DiffMode)
    where
        A: ShardableRelease,
        B: ShardableRelease,
    {
        self.absorb(diff_releases(old, new, chunk_size, mode));
    }

    /// The cumulative removal evidence in ascending claim-key order: one
    /// `Removed` change per claim of the initial release that is absent from
    /// the latest release folded in.
    pub fn removal_evidence(&self) -> Vec<ClaimChange> {
        self.removed
            .iter()
            .map(|&(provider, location, technology)| ClaimChange {
                provider,
                location,
                technology,
                kind: ClaimChangeKind::Removed,
            })
            .collect()
    }

    /// Number of net-removed claims.
    pub fn removal_count(&self) -> usize {
        self.removed.len()
    }

    /// Per-provider count of net-removed claims — the cumulative evidence
    /// the labelling pipeline consumes.
    pub fn removals_by_provider(&self) -> std::collections::BTreeMap<ProviderId, usize> {
        let mut out = std::collections::BTreeMap::new();
        for (provider, _, _) in &self.removed {
            *out.entry(*provider).or_insert(0) += 1;
        }
        out
    }

    /// Per-pair execution reports, in fold order.
    pub fn pair_reports(&self) -> &[DiffPairReport] {
        &self.pairs
    }

    /// Sum of the per-pair diff wall-clocks.
    pub fn total_wall(&self) -> Duration {
        self.pairs.iter().map(|p| p.wall).sum()
    }

    /// Peak resident entries over all folded pairs.
    pub fn peak_resident_entries(&self) -> usize {
        self.pairs
            .iter()
            .map(|p| p.stats.peak_resident_entries)
            .max()
            .unwrap_or(0)
    }

    /// Fold the chain's identity and cumulative evidence into a hasher, for
    /// pinning golden fingerprints.
    pub fn fold_evidence_into<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        (self.from, self.to).hash(h);
        self.removed.len().hash(h);
        for key in &self.removed {
            key.hash(h);
        }
        self.added.len().hash(h);
        for key in &self.added {
            key.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LocationId;
    use crate::tech::Technology;

    fn v(minor: u32) -> ReleaseVersion {
        ReleaseVersion { major: 1, minor }
    }

    fn entry(provider: u32, loc: u64, down: f64, up: f64) -> ClaimEntry {
        ClaimEntry {
            key: (ProviderId(provider), LocationId(loc), Technology::Cable),
            max_down_mbps: down,
            max_up_mbps: up,
        }
    }

    fn stream(minor: u32, entries: Vec<ClaimEntry>, chunk: usize) -> SortedClaimStream {
        SortedClaimStream::new(v(minor), entries, chunk)
    }

    /// An in-memory `ShardableRelease` for unit tests.
    struct TestRelease {
        version: ReleaseVersion,
        entries: Vec<ClaimEntry>,
    }

    impl TestRelease {
        fn new(minor: u32, entries: Vec<ClaimEntry>) -> Self {
            Self {
                version: v(minor),
                entries,
            }
        }
    }

    impl ShardableRelease for TestRelease {
        type Stream = SortedClaimStream;

        fn version(&self) -> ReleaseVersion {
            self.version
        }

        fn providers(&self) -> Vec<ProviderId> {
            let set: BTreeSet<ProviderId> = self.entries.iter().map(|e| e.key.0).collect();
            set.into_iter().collect()
        }

        fn full_stream(&self, chunk_size: usize) -> SortedClaimStream {
            SortedClaimStream::new(self.version, self.entries.clone(), chunk_size)
        }

        fn provider_stream(&self, provider: ProviderId, chunk_size: usize) -> SortedClaimStream {
            let entries = self
                .entries
                .iter()
                .filter(|e| e.key.0 == provider)
                .copied()
                .collect();
            SortedClaimStream::new(self.version, entries, chunk_size)
        }
    }

    #[test]
    fn merge_join_detects_all_change_kinds() {
        for chunk in [1, 2, 3, 1000] {
            let old = stream(
                0,
                vec![
                    entry(1, 0, 100.0, 10.0),
                    entry(1, 1, 100.0, 10.0),
                    entry(1, 2, 100.0, 10.0),
                ],
                chunk,
            );
            let new = stream(
                1,
                vec![
                    entry(1, 0, 100.0, 10.0),
                    entry(1, 2, 300.0, 10.0),
                    entry(1, 3, 100.0, 10.0),
                ],
                chunk,
            );
            let changes: Vec<ClaimChange> = StreamingDiff::new(old, new).collect();
            assert_eq!(changes.len(), 3, "chunk={chunk}");
            assert_eq!(changes[0].location, LocationId(1));
            assert_eq!(changes[0].kind, ClaimChangeKind::Removed);
            assert_eq!(changes[1].location, LocationId(2));
            assert_eq!(changes[1].kind, ClaimChangeKind::Modified);
            assert_eq!(changes[2].location, LocationId(3));
            assert_eq!(changes[2].kind, ClaimChangeKind::Added);
        }
    }

    #[test]
    fn identical_streams_yield_no_changes() {
        let entries = vec![entry(1, 0, 50.0, 5.0), entry(2, 9, 25.0, 3.0)];
        let diff = StreamingDiff::new(stream(0, entries.clone(), 1), stream(1, entries, 2));
        assert_eq!(diff.count(), 0);
    }

    #[test]
    fn empty_streams_are_handled() {
        let changes: Vec<ClaimChange> =
            StreamingDiff::new(stream(0, vec![], 4), stream(1, vec![], 4)).collect();
        assert!(changes.is_empty());
        let additions: Vec<ClaimChange> = StreamingDiff::new(
            stream(0, vec![], 4),
            stream(1, vec![entry(1, 0, 1.0, 1.0)], 4),
        )
        .collect();
        assert_eq!(additions.len(), 1);
        assert_eq!(additions[0].kind, ClaimChangeKind::Added);
    }

    #[test]
    fn duplicate_keys_canonicalise_to_the_fastest_record() {
        // Two records for the same key; the (down, up)-greatest one wins on
        // both sides, so the claim is unchanged regardless of record order.
        let old = vec![entry(1, 0, 10.0, 1.0), entry(1, 0, 100.0, 10.0)];
        let new = vec![entry(1, 0, 100.0, 10.0), entry(1, 0, 10.0, 1.0)];
        for chunk in [1, 2, 8] {
            let changes: Vec<ClaimChange> =
                StreamingDiff::new(stream(0, old.clone(), chunk), stream(1, new.clone(), chunk))
                    .collect();
            assert!(changes.is_empty(), "chunk={chunk}: {changes:?}");
        }
        // Equal download, higher upload wins the canonicalisation.
        let a = entry(1, 0, 100.0, 5.0);
        let b = entry(1, 0, 100.0, 50.0);
        assert!(b.wins_over(&a));
        assert!(!a.wins_over(&b));
    }

    #[test]
    fn duplicate_runs_spanning_chunk_boundaries_are_canonicalised() {
        // chunk=1 forces every duplicate run across a chunk boundary.
        let old = vec![
            entry(1, 0, 10.0, 1.0),
            entry(1, 0, 500.0, 50.0),
            entry(1, 0, 100.0, 10.0),
        ];
        let new = vec![entry(1, 0, 500.0, 50.0)];
        let changes: Vec<ClaimChange> =
            StreamingDiff::new(stream(0, old, 1), stream(1, new, 1)).collect();
        assert!(changes.is_empty(), "{changes:?}");
    }

    #[test]
    fn nan_speeds_compare_by_bit_pattern() {
        let nan = f64::NAN;
        let old = vec![entry(1, 0, nan, 1.0)];
        // Same bit pattern: unchanged, not eternally Modified.
        let changes: Vec<ClaimChange> =
            StreamingDiff::new(stream(0, old.clone(), 4), stream(1, old.clone(), 4)).collect();
        assert!(changes.is_empty(), "identical NaN must not be Modified");
        // A real speed change under a NaN upload is still detected.
        let new = vec![entry(1, 0, 2.0, 1.0)];
        let changes: Vec<ClaimChange> =
            StreamingDiff::new(stream(0, old, 4), stream(1, new, 4)).collect();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].kind, ClaimChangeKind::Modified);
    }

    /// A procedurally generated stream with no backing storage — the shape
    /// of a genuinely streaming source (file reader, emitter view).
    struct GenStream {
        version: ReleaseVersion,
        next: u64,
        end: u64,
        chunk_size: usize,
    }

    impl ReleaseStream for GenStream {
        fn version(&self) -> ReleaseVersion {
            self.version
        }

        fn next_chunk(&mut self) -> Option<Vec<ClaimEntry>> {
            if self.next >= self.end {
                return None;
            }
            let n = (self.chunk_size as u64).min(self.end - self.next);
            let chunk = (self.next..self.next + n)
                .map(|i| entry(1, i, 100.0, 10.0))
                .collect();
            self.next += n;
            Some(chunk)
        }
    }

    #[test]
    fn peak_residency_is_bounded_by_two_chunks_for_streaming_sources() {
        let chunk = 64;
        let gen = |minor: u32, range: std::ops::Range<u64>| GenStream {
            version: v(minor),
            next: range.start,
            end: range.end,
            chunk_size: chunk,
        };
        let mut diff = StreamingDiff::new(gen(0, 0..1000), gen(1, 500..1500));
        let n = diff.by_ref().count();
        assert_eq!(n, 1000);
        let stats = diff.stats();
        assert!(
            stats.peak_resident_entries <= 2 * chunk,
            "peak {} exceeds two chunks of {chunk}",
            stats.peak_resident_entries
        );
        assert!(stats.chunks_pulled >= 1000 / chunk);
    }

    #[test]
    fn in_memory_adapters_admit_their_backing_storage() {
        // SortedClaimStream owns a full copy of the release; the peak stats
        // must say so rather than pretend the path is bounded.
        let old: Vec<ClaimEntry> = (0..500).map(|i| entry(1, i, 100.0, 10.0)).collect();
        let mut diff = StreamingDiff::new(stream(0, old.clone(), 64), stream(1, old, 64));
        let _ = diff.by_ref().count();
        assert!(
            diff.stats().peak_resident_entries >= 1000,
            "in-memory adapter backing storage missing from peak ({})",
            diff.stats().peak_resident_entries
        );
    }

    #[test]
    fn sharded_diff_matches_sequential_for_any_worker_count() {
        let old = TestRelease::new(
            0,
            (0..300)
                .map(|i| entry((i % 7) as u32 + 1, i, 100.0 + i as f64, 10.0))
                .collect(),
        );
        let new = TestRelease::new(
            1,
            (0..300)
                .filter(|i| i % 5 != 0)
                .map(|i| entry((i % 7) as u32 + 1, i, 100.0 + (i + i % 3) as f64, 10.0))
                .collect(),
        );
        let base = diff_releases(&old, &new, 32, DiffMode::Sequential);
        assert!(!base.changes.is_empty());
        for workers in [2, 3, 8] {
            let sharded = diff_releases(&old, &new, 32, DiffMode::Threads(workers));
            assert_eq!(
                sharded.changes, base.changes,
                "sharded diff differs at {workers} workers"
            );
            // Reported workers are clamped to the shard count (7 providers).
            assert_eq!(sharded.stats.workers, workers.min(7));
        }
    }

    #[test]
    fn diff_mode_worker_counts_resolve_sanely() {
        assert_eq!(DiffMode::Sequential.worker_count(), 1);
        assert_eq!(DiffMode::Threads(0).worker_count(), 1);
        assert_eq!(DiffMode::Threads(4).worker_count(), 4);
        assert!(DiffMode::Parallel.worker_count() >= 1);
    }

    #[test]
    fn chain_accumulates_net_removals() {
        let r0 = TestRelease::new(0, vec![entry(1, 0, 1.0, 1.0), entry(1, 1, 1.0, 1.0)]);
        let r1 = TestRelease::new(1, vec![entry(1, 0, 1.0, 1.0)]);
        let r2 = TestRelease::new(2, vec![]);
        let mut chain = DiffChain::new(v(0));
        chain.extend_with(&r0, &r1, 16, DiffMode::Sequential);
        chain.extend_with(&r1, &r2, 16, DiffMode::Sequential);
        assert_eq!(chain.removal_count(), 2);
        assert_eq!(chain.removals_by_provider()[&ProviderId(1)], 2);
        assert_eq!(chain.pair_reports().len(), 2);
        assert_eq!(chain.to_version(), v(2));
        let evidence = chain.removal_evidence();
        assert!(evidence.iter().all(|c| c.kind == ClaimChangeKind::Removed));
        assert_eq!(evidence.len(), 2);
    }

    #[test]
    fn chain_nets_out_restorations_and_transients() {
        // Key A: in r0, removed in r1, restored in r2 → no evidence.
        // Key B: absent from r0, added in r1, removed in r2 → no evidence.
        // Key C: in r0, removed in r2 → evidence.
        let a = entry(1, 0, 1.0, 1.0);
        let b = entry(1, 1, 2.0, 2.0);
        let c = entry(1, 2, 3.0, 3.0);
        let r0 = TestRelease::new(0, vec![a, c]);
        let r1 = TestRelease::new(1, vec![b, c]);
        let r2 = TestRelease::new(2, vec![a]);
        let mut chain = DiffChain::new(v(0));
        chain.extend_with(&r0, &r1, 16, DiffMode::Sequential);
        chain.extend_with(&r1, &r2, 16, DiffMode::Sequential);
        let evidence = chain.removal_evidence();
        assert_eq!(evidence.len(), 1);
        assert_eq!(evidence[0].location, LocationId(2));
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn chain_rejects_non_contiguous_pairs() {
        let r0 = TestRelease::new(0, vec![]);
        let r2 = TestRelease::new(2, vec![]);
        let mut chain = DiffChain::new(v(1));
        chain.absorb(diff_releases(&r0, &r2, 16, DiffMode::Sequential));
    }

    /// A procedural claim stream: regenerates each provider's claims from the
    /// shard index alone, holding only the provider list resident.
    struct GenClaims {
        providers: Vec<ProviderId>,
        per_provider: usize,
    }

    impl ShardStream for GenClaims {
        type Item = ClaimEntry;

        fn shard_count(&self) -> usize {
            self.providers.len()
        }

        fn shard(&self, index: usize) -> Vec<ClaimEntry> {
            let p = self.providers[index];
            (0..self.per_provider as u64)
                .map(|i| entry(p.value(), i, 100.0 + i as f64, 10.0))
                .collect()
        }

        fn resident_entries(&self) -> usize {
            self.providers.len()
        }
    }

    impl ClaimStream for GenClaims {
        fn providers(&self) -> Vec<ProviderId> {
            self.providers.clone()
        }
    }

    #[test]
    fn residency_meter_tracks_peak_across_acquire_release() {
        let m = ResidencyMeter::new();
        m.acquire(100);
        m.release(100);
        m.acquire(60);
        m.pin(10);
        assert_eq!(m.current(), 70);
        assert_eq!(m.peak(), 100, "peak must survive release");
        m.acquire(50);
        assert_eq!(m.peak(), 120);
    }

    #[test]
    fn meter_instruments_mirror_traffic_without_changing_accounting() {
        let registry = MetricsRegistry::new();
        let m = ResidencyMeter::new();
        m.attach_instruments(MeterInstruments::register(&registry, "stream_residency"));
        m.acquire(100);
        m.release(40);
        m.pin(10);
        // The meter's own accounting is untouched by instrumentation.
        assert_eq!(m.current(), 70);
        assert_eq!(m.peak(), 100);
        // The registry sees the same traffic.
        let acquired = registry.counter("stream_residency_acquired_entries_total", "", &[]);
        assert_eq!(acquired.value(), 110, "pin counts as an acquire");
        let released = registry.counter("stream_residency_released_entries_total", "", &[]);
        assert_eq!(released.value(), 40);
        let current = registry.gauge("stream_residency_current_entries", "", &[]);
        assert_eq!(current.value(), 70.0);
        let peak = registry.gauge("stream_residency_peak_entries", "", &[]);
        assert_eq!(peak.value(), 100.0);
        // Second attachment is ignored: first wins.
        let other = MetricsRegistry::new();
        m.attach_instruments(MeterInstruments::register(&other, "stream_residency"));
        m.acquire(5);
        assert_eq!(acquired.value(), 115);
        assert_eq!(
            other
                .counter("stream_residency_acquired_entries_total", "", &[])
                .value(),
            0
        );
    }

    #[test]
    fn collect_shards_is_worker_count_invariant() {
        let stream = GenClaims {
            providers: (1..=9).map(ProviderId).collect(),
            per_provider: 37,
        };
        let base = collect_shards(&stream, 1);
        assert_eq!(base.len(), 9 * 37);
        // Shards concatenate in provider order → sorted claim base.
        assert!(base.windows(2).all(|w| w[0].key <= w[1].key));
        for workers in [2, 4, 16] {
            assert_eq!(collect_shards(&stream, workers), base);
        }
    }

    #[test]
    fn drain_shards_bounds_residency_to_one_shard() {
        let stream = GenClaims {
            providers: (1..=9).map(ProviderId).collect(),
            per_provider: 37,
        };
        let meter = ResidencyMeter::new();
        let mut seen = 0usize;
        let mut order = Vec::new();
        drain_shards(&stream, &meter, |i, shard| {
            seen += shard.len();
            order.push(i);
        });
        assert_eq!(seen, 9 * 37);
        assert_eq!(order, (0..9).collect::<Vec<_>>());
        assert_eq!(meter.current(), 0, "everything released after the drain");
        assert!(
            meter.peak() <= 37 + stream.resident_entries(),
            "peak {} exceeds one shard + backing state",
            meter.peak()
        );
        assert_eq!(stream.providers().len(), 9);
    }
}
