//! Tokenisation for the hashing embedder.

/// Lowercase word unigrams (alphanumeric runs).
pub fn word_unigrams(text: &str) -> Vec<String> {
    text.to_ascii_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Adjacent word bigrams joined with an underscore.
pub fn word_bigrams(text: &str) -> Vec<String> {
    let words = word_unigrams(text);
    words
        .windows(2)
        .map(|w| format!("{}_{}", w[0], w[1]))
        .collect()
}

/// Character trigrams of the lowercased text with whitespace collapsed;
/// robust to small spelling differences between filings.
pub fn char_trigrams(text: &str) -> Vec<String> {
    let cleaned: Vec<char> = text
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    if cleaned.len() < 3 {
        return Vec::new();
    }
    cleaned
        .windows(3)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Produces weighted tokens from a text: word unigrams (weight 1.0), bigrams
/// (weight 0.7) and character trigrams (weight 0.3). The weights bias the
/// embedding towards word-level semantics while the trigrams provide
/// robustness to punctuation and inflection differences.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    pub unigram_weight: f32,
    pub bigram_weight: f32,
    pub trigram_weight: f32,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            unigram_weight: 1.0,
            bigram_weight: 0.7,
            trigram_weight: 0.3,
        }
    }
}

impl Tokenizer {
    /// Iterate weighted `(token, weight)` pairs for a text. Tokens are
    /// prefixed with their kind so a unigram can never collide with a trigram
    /// of the same spelling.
    pub fn weighted_tokens(&self, text: &str) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        for t in word_unigrams(text) {
            out.push((format!("u:{t}"), self.unigram_weight));
        }
        for t in word_bigrams(text) {
            out.push((format!("b:{t}"), self.bigram_weight));
        }
        for t in char_trigrams(text) {
            out.push((format!("t:{t}"), self.trigram_weight));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigrams_lowercase_and_split_on_punctuation() {
        assert_eq!(
            word_unigrams("Fiber-to-the-Home, validated!"),
            vec!["fiber", "to", "the", "home", "validated"]
        );
    }

    #[test]
    fn bigrams_join_adjacent_words() {
        assert_eq!(
            word_bigrams("census block coverage"),
            vec!["census_block", "block_coverage"]
        );
    }

    #[test]
    fn bigrams_empty_for_single_word() {
        assert!(word_bigrams("coverage").is_empty());
    }

    #[test]
    fn trigrams_skip_whitespace_and_punctuation() {
        assert_eq!(char_trigrams("ab c"), vec!["abc"]);
        assert!(char_trigrams("ab").is_empty());
    }

    #[test]
    fn weighted_tokens_are_kind_prefixed() {
        let t = Tokenizer::default();
        let tokens = t.weighted_tokens("fiber routes");
        assert!(tokens.iter().any(|(s, w)| s == "u:fiber" && *w == 1.0));
        assert!(tokens
            .iter()
            .any(|(s, w)| s == "b:fiber_routes" && *w == 0.7));
        assert!(tokens.iter().any(|(s, _)| s.starts_with("t:")));
    }

    #[test]
    fn empty_text_yields_no_tokens() {
        assert!(Tokenizer::default().weighted_tokens("").is_empty());
        assert!(Tokenizer::default().weighted_tokens("  ,,, ").is_empty());
    }
}
