//! Attributing and localising MLab tests to providers (§4.2.2).
//!
//! Each usable MLab test carries an ASN and an IP-geolocation disc. Given the
//! provider→ASN mapping produced by the `asnmap` matcher and each provider's
//! claimed footprint in the NBM, a test contributes evidence to every hex that
//! is (a) within the geolocation disc and (b) claimed by the provider the
//! test's ASN belongs to.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bdc::{Asn, ProviderId};
use hexgrid::{HexCell, Resolution};
use serde::{Deserialize, Serialize};

use crate::mlab::MlabDataset;

/// Per-provider, per-hex MLab evidence: how many usable tests could have been
/// run from each hex of the provider's claimed footprint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProviderHexTests {
    counts: HashMap<(ProviderId, HexCell), f64>,
}

impl ProviderHexTests {
    /// Test count attributed to a provider in a hex (0 when none).
    pub fn count(&self, provider: ProviderId, hex: HexCell) -> f64 {
        *self.counts.get(&(provider, hex)).unwrap_or(&0.0)
    }

    /// All hexes with attributed tests for a provider.
    pub fn hexes_for(&self, provider: ProviderId) -> BTreeSet<HexCell> {
        self.counts
            .keys()
            .filter(|(p, _)| *p == provider)
            .map(|(_, h)| *h)
            .collect()
    }

    /// Total number of (provider, hex) pairs with evidence.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no tests were attributed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total attributed test mass for a provider.
    pub fn total_for(&self, provider: ProviderId) -> f64 {
        self.counts
            .iter()
            .filter(|((p, _), _)| *p == provider)
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterate over all `(provider, hex, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (ProviderId, HexCell, f64)> + '_ {
        self.counts.iter().map(|((p, h), c)| (*p, *h, *c))
    }
}

/// The hexes a test could have been run from: every cell whose centroid lies
/// within the geolocation accuracy radius of the test's centre (plus the
/// centre cell itself).
pub fn candidate_hexes(
    center: &geoprim::LatLng,
    accuracy_radius_km: f64,
    res: Resolution,
) -> Vec<HexCell> {
    let center_cell = HexCell::containing(center, res);
    // One grid step moves roughly sqrt(3) * circumradius between centroids.
    let step_km = res.hex_size_km() * 3.0_f64.sqrt();
    let k = (accuracy_radius_km / step_km).ceil().max(0.0) as usize;
    center_cell
        .grid_disk(k)
        .into_iter()
        .filter(|cell| {
            cell == &center_cell || cell.center().haversine_km(center) <= accuracy_radius_km
        })
        .collect()
}

/// Attribute every usable MLab test to providers and localise it to hexes.
///
/// * `provider_asns` — the provider→ASN mapping from the `asnmap` matcher.
/// * `claimed_hexes` — each provider's claimed footprint in the NBM.
///
/// A test whose ASN maps to several providers contributes to each of them (the
/// paper notes shared ASNs are usually corporate siblings or wholesale
/// transit). Tests are split evenly across the candidate hexes that survive
/// the footprint intersection so that each test contributes one unit of mass.
pub fn attribute_mlab_tests(
    mlab: &MlabDataset,
    provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
    claimed_hexes: &BTreeMap<ProviderId, BTreeSet<HexCell>>,
    res: Resolution,
) -> ProviderHexTests {
    // Invert the provider→ASN map for lookup by test ASN.
    let mut asn_to_providers: BTreeMap<Asn, Vec<ProviderId>> = BTreeMap::new();
    for (provider, asns) in provider_asns {
        for asn in asns {
            asn_to_providers.entry(*asn).or_default().push(*provider);
        }
    }

    let mut out = ProviderHexTests::default();
    for test in mlab.usable_tests() {
        let Some(providers) = asn_to_providers.get(&test.asn) else {
            continue;
        };
        let candidates = candidate_hexes(&test.geo_center, test.accuracy_radius_km, res);
        for provider in providers {
            let Some(footprint) = claimed_hexes.get(provider) else {
                continue;
            };
            let localized: Vec<&HexCell> = candidates
                .iter()
                .filter(|h| footprint.contains(h))
                .collect();
            if localized.is_empty() {
                continue;
            }
            let share = 1.0 / localized.len() as f64;
            for hex in localized {
                *out.counts.entry((*provider, *hex)).or_insert(0.0) += share;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlab::MlabTest;
    use bdc::DayStamp;
    use geoprim::LatLng;
    use hexgrid::NBM_RESOLUTION;

    fn center() -> LatLng {
        LatLng::new(37.2296, -80.4139)
    }

    fn test_at(asn: u32, center: LatLng, radius: f64) -> MlabTest {
        MlabTest {
            asn: Asn(asn),
            download_mbps: 100.0,
            upload_mbps: 10.0,
            latency_ms: 20.0,
            geo_center: center,
            accuracy_radius_km: radius,
            day: DayStamp::from_ymd(2022, 3, 1),
        }
    }

    #[test]
    fn candidate_hexes_grow_with_radius() {
        let small = candidate_hexes(&center(), 1.0, NBM_RESOLUTION);
        let large = candidate_hexes(&center(), 10.0, NBM_RESOLUTION);
        assert!(!small.is_empty());
        assert!(large.len() > small.len());
        let center_cell = HexCell::containing(&center(), NBM_RESOLUTION);
        assert!(small.contains(&center_cell));
        assert!(large.contains(&center_cell));
    }

    #[test]
    fn zero_radius_still_returns_center_cell() {
        let cells = candidate_hexes(&center(), 0.0, NBM_RESOLUTION);
        assert_eq!(cells, vec![HexCell::containing(&center(), NBM_RESOLUTION)]);
    }

    fn maps(
        provider: u32,
        asn: u32,
        footprint: BTreeSet<HexCell>,
    ) -> (
        BTreeMap<ProviderId, BTreeSet<Asn>>,
        BTreeMap<ProviderId, BTreeSet<HexCell>>,
    ) {
        let mut pa = BTreeMap::new();
        pa.insert(ProviderId(provider), BTreeSet::from([Asn(asn)]));
        let mut ch = BTreeMap::new();
        ch.insert(ProviderId(provider), footprint);
        (pa, ch)
    }

    #[test]
    fn test_attributed_to_claimed_footprint_only() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint.clone());
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(!attributed.is_empty());
        // Every attributed hex is inside the claimed footprint.
        for hex in attributed.hexes_for(ProviderId(1)) {
            assert!(footprint.contains(&hex));
        }
        // The test contributes exactly one unit of mass in total.
        assert!((attributed.total_for(ProviderId(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unusable_or_unmapped_tests_are_ignored() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint);
        let mlab = MlabDataset::new(vec![
            test_at(64500, center(), 50.0), // radius too large
            test_at(99999, center(), 5.0),  // unmapped ASN
        ]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.is_empty());
        assert_eq!(attributed.count(ProviderId(1), HexCell::containing(&center(), NBM_RESOLUTION)), 0.0);
    }

    #[test]
    fn test_outside_footprint_contributes_nothing() {
        // Footprint far away from the test's geolocation disc.
        let far = LatLng::new(45.0, -93.0);
        let footprint: BTreeSet<HexCell> = candidate_hexes(&far, 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint);
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.is_empty());
    }

    #[test]
    fn shared_asn_contributes_to_both_providers() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let mut pa: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        pa.insert(ProviderId(1), BTreeSet::from([Asn(64500)]));
        pa.insert(ProviderId(2), BTreeSet::from([Asn(64500)]));
        let mut ch: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
        ch.insert(ProviderId(1), footprint.clone());
        ch.insert(ProviderId(2), footprint);
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.total_for(ProviderId(1)) > 0.0);
        assert!(attributed.total_for(ProviderId(2)) > 0.0);
    }
}
