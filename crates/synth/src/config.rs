//! Configuration of the synthetic world generator.

use serde::{Deserialize, Serialize};

/// All knobs of the synthetic United States. Every quantity scales linearly
/// from `n_bsls`, so the same code path is used for quick unit tests
/// ([`SynthConfig::tiny`]), the default experiment scale
/// ([`SynthConfig::default`]) and larger runs ([`SynthConfig::large`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master RNG seed; the entire world is a pure function of the config.
    pub seed: u64,
    /// Total number of Broadband Serviceable Locations to generate.
    pub n_bsls: usize,
    /// Number of providers (including the majors).
    pub n_providers: usize,
    /// Number of "major" national ISPs (the paper's Figure 6 breaks out 8).
    pub n_major_providers: usize,
    /// Average number of BSLs per town cluster (controls hex density; ~250
    /// yields the paper's median of ~4 BSLs per occupied res-8 hex).
    pub bsls_per_town: usize,
    /// Fraction of a provider's truthful footprint additionally over-claimed
    /// by a typical (non-JCC) provider.
    pub overclaim_fraction: f64,
    /// Probability that a false claim in an active state gets challenged.
    pub challenge_rate_false: f64,
    /// Probability that a true claim in an active state gets challenged.
    pub challenge_rate_true: f64,
    /// Probability that an unchallenged false claim is silently corrected by
    /// the provider in a later minor release (the "map diff" signal).
    pub correction_rate: f64,
    /// Expected Ookla unique devices per BSL in genuinely served areas.
    pub ookla_devices_per_served_bsl: f64,
    /// Expected MLab tests per provider per genuinely served hex.
    pub mlab_tests_per_served_hex: f64,
    /// Fraction of providers that can be matched to ASNs (the paper matches
    /// 72.4%).
    pub asn_match_rate: f64,
    /// Include a Jefferson-County-Cable-style intentional over-claimer.
    pub include_jcc: bool,
    /// Number of bi-weekly minor releases to generate after the initial one.
    pub n_minor_releases: usize,
    /// Peak-resident-entry budget for the streaming synth → dataset path
    /// (`None` = unbudgeted, the default for the materialised presets). The
    /// streaming engine meters every resident structure against this and the
    /// run fails loudly when the observed peak exceeds it, so the national
    /// memory claim is enforced, not aspirational.
    #[serde(default)]
    pub max_resident_entries: Option<usize>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 20221118, // the initial NBM's release month
            n_bsls: 40_000,
            n_providers: 160,
            n_major_providers: 8,
            bsls_per_town: 250,
            overclaim_fraction: 0.22,
            challenge_rate_false: 0.60,
            challenge_rate_true: 0.015,
            correction_rate: 0.25,
            ookla_devices_per_served_bsl: 1.6,
            mlab_tests_per_served_hex: 3.0,
            asn_match_rate: 0.72,
            include_jcc: true,
            n_minor_releases: 6,
            max_resident_entries: None,
        }
    }
}

/// Hard ceiling on the fabric size: location ids and prefix sums are u64, but
/// anything past 2^40 BSLs (a thousand national fabrics) is a config bug, not
/// an ambition, and is rejected with a clear message instead of being allowed
/// to grind or overflow downstream `usize` arithmetic on 32-bit hosts.
pub const MAX_FABRIC_BSLS: usize = 1 << 40;

impl SynthConfig {
    /// A very small world for unit tests (a few thousand BSLs, a handful of
    /// providers) that still exercises every code path.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            n_bsls: 4_000,
            n_providers: 30,
            n_major_providers: 4,
            ..Self::default()
        }
    }

    /// The default experiment scale used by the benchmark harness.
    pub fn experiment(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A larger world for longer benchmark runs.
    pub fn large(seed: u64) -> Self {
        Self {
            seed,
            n_bsls: 120_000,
            n_providers: 400,
            n_major_providers: 8,
            ..Self::default()
        }
    }

    /// The real fabric's scale: ~115M BSLs, a couple of thousand filers (the
    /// paper analyses 2,153). A world this size cannot be materialised — it
    /// only runs through the streaming synth → dataset path, under the
    /// `max_resident_entries` budget set here. Rates are turned down from the
    /// experiment preset so the regulatory record (challenges, corrections,
    /// speed tests) stays at realistic absolute volumes rather than scaling
    /// linearly into the hundreds of millions.
    pub fn national(seed: u64) -> Self {
        Self {
            seed,
            n_bsls: 115_000_000,
            n_providers: 2_000,
            n_major_providers: 2,
            bsls_per_town: 2_000,
            challenge_rate_false: 0.02,
            challenge_rate_true: 0.000_5,
            correction_rate: 0.02,
            mlab_tests_per_served_hex: 0.25,
            // Calibrated against a measured full-scale run (seed 7): the
            // regulatory pass peaks at ~302M resident entries — a major
            // provider's transient claim + geometry rows scale with its
            // footprint — so the budget sits ~11% above that watermark.
            max_resident_entries: Some(336_000_000),
            ..Self::default()
        }
    }

    /// `national(seed)` shrunk by an integer divisor (both the fabric and the
    /// provider population), with the residency budget scaled the same way —
    /// the knob behind `examples/national_streaming.rs --scale` and the CI
    /// smoke run. `scale == 1` is the full national preset.
    pub fn national_scaled(seed: u64, scale: usize) -> Self {
        let scale = scale.max(1);
        let full = Self::national(seed);
        Self {
            n_bsls: (full.n_bsls / scale).max(1),
            n_providers: (full.n_providers / scale).max(40).min(full.n_providers),
            n_major_providers: full.n_major_providers,
            max_resident_entries: full
                .max_resident_entries
                .map(|b| (b / scale).max(4_000_000)),
            ..full
        }
    }

    /// Basic sanity checks; called by the generator before doing any work.
    ///
    /// The error message is returned verbatim by [`crate::SynthUs::generate_with`]
    /// and used verbatim as the panic payload of [`crate::SynthUs::generate`]
    /// (prefixed with `"invalid SynthConfig: "`).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_bsls == 0 {
            return Err("n_bsls must be positive".into());
        }
        if self.n_providers == 0 {
            return Err("n_providers must be positive".into());
        }
        if self.n_major_providers > self.n_providers {
            return Err("n_major_providers cannot exceed n_providers".into());
        }
        if self.bsls_per_town == 0 {
            return Err("bsls_per_town must be positive".into());
        }
        for (name, v) in [
            ("overclaim_fraction", self.overclaim_fraction),
            ("challenge_rate_false", self.challenge_rate_false),
            ("challenge_rate_true", self.challenge_rate_true),
            ("correction_rate", self.correction_rate),
            ("asn_match_rate", self.asn_match_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        for (name, v) in [
            (
                "ookla_devices_per_served_bsl",
                self.ookla_devices_per_served_bsl,
            ),
            ("mlab_tests_per_served_hex", self.mlab_tests_per_served_hex),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if self.n_bsls > MAX_FABRIC_BSLS {
            return Err(format!(
                "n_bsls {} exceeds the supported fabric scale of {MAX_FABRIC_BSLS} locations \
                 (location ids and per-town offsets are u64, but a fabric this large is a \
                 configuration error)",
                self.n_bsls
            ));
        }
        if let Some(budget) = self.max_resident_entries {
            let floor = self.streaming_residency_floor();
            if budget < floor {
                return Err(format!(
                    "max_resident_entries budget {budget} is below the streaming floor of \
                     ~{floor} entries for this config (occupied-hex table + towns + providers); \
                     raise the budget or shrink n_bsls"
                ));
            }
        }
        Ok(())
    }

    /// A conservative lower bound on what the streaming path must keep
    /// resident for this config: the occupied-hex table (~n_bsls/8 at the
    /// generator's tuned density of ~4 BSLs per occupied hex), the town list
    /// and the provider profiles. Budgets below this floor can never be met
    /// and are rejected by [`SynthConfig::validate`].
    pub fn streaming_residency_floor(&self) -> usize {
        self.n_bsls / 8 + self.n_bsls / self.bsls_per_town.max(1) + self.n_providers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SynthConfig::default().validate().is_ok());
        assert!(SynthConfig::tiny(1).validate().is_ok());
        assert!(SynthConfig::large(1).validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = SynthConfig {
            n_bsls: 0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            overclaim_fraction: 1.5,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            n_major_providers: SynthConfig::default().n_providers + 1,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            bsls_per_town: 0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            ookla_devices_per_served_bsl: f64::NAN,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SynthConfig {
            mlab_tests_per_served_hex: -1.0,
            ..SynthConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn tiny_is_smaller_than_default() {
        assert!(SynthConfig::tiny(1).n_bsls < SynthConfig::default().n_bsls);
    }

    #[test]
    fn national_preset_is_valid_and_budgeted() {
        let c = SynthConfig::national(7);
        assert!(c.validate().is_ok());
        assert_eq!(c.n_bsls, 115_000_000);
        let budget = c.max_resident_entries.expect("national sets a budget");
        assert!(budget >= c.streaming_residency_floor());
        // The whole point: the budget is well below what materialising the
        // world would cost (fabric + every provider's claims + filings +
        // the full release chain + speed tests is many entries per BSL,
        // all resident at once); the streaming path holds under 3.
        assert!(budget < c.n_bsls * 3);
    }

    #[test]
    fn national_scaled_shrinks_with_the_budget() {
        for scale in [1, 16, 64] {
            let c = SynthConfig::national_scaled(7, scale);
            assert!(c.validate().is_ok(), "scale {scale} should validate");
            assert_eq!(c.n_bsls, SynthConfig::national(7).n_bsls / scale);
        }
        assert_eq!(
            SynthConfig::national_scaled(7, 1).max_resident_entries,
            SynthConfig::national(7).max_resident_entries
        );
    }

    #[test]
    fn oversized_fabric_is_rejected_with_scale_message() {
        let c = SynthConfig {
            n_bsls: MAX_FABRIC_BSLS + 1,
            ..SynthConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("exceeds the supported fabric scale"), "{err}");
    }

    #[test]
    fn under_floor_budget_is_rejected_with_floor_message() {
        let c = SynthConfig {
            max_resident_entries: Some(10),
            ..SynthConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("below the streaming floor"), "{err}");
        // A budget at the floor is accepted.
        let ok = SynthConfig {
            max_resident_entries: Some(c.streaming_residency_floor()),
            ..SynthConfig::default()
        };
        assert!(ok.validate().is_ok());
    }
}
