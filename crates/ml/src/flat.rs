//! Flattened forest inference: the recursive [`RegressionTree`] boxes lowered
//! into one contiguous node array for cache-friendly traversal at serving
//! time.
//!
//! [`GbdtModel::predict_margin`] walks a `Vec<Node>` per tree through an enum
//! match; fine for training-time evaluation, but the serving hot path wants a
//! branch-predictable loop over a flat struct-of-fields node. [`FlatForest`]
//! stores every tree's nodes back-to-back (absolute child indices, leaves
//! tagged with a sentinel feature), so a whole model is two allocations and a
//! prediction never chases a discriminant.
//!
//! The load-bearing contract: **flat traversal is bit-identical to the
//! recursive path.** Same node semantics (`NaN` follows `default_left`,
//! otherwise `v <= threshold` goes left), same left-to-right tree order, same
//! `f64` summation order — so `FlatForest::predict_margin` equals
//! `GbdtModel::predict_margin` to the last bit, a property pinned by the
//! tests below and reused by the attribution module (which walks the same
//! flat paths) and by the `redsus_serve` batch/online scorers.

use std::collections::HashMap;

use crate::gbdt::{sigmoid, GbdtModel};
use crate::tree::Node;

/// Sentinel value of [`FlatNode::feature`] marking a leaf.
pub const LEAF_FEATURE: u32 = u32::MAX;

/// One lowered tree node. Splits carry the routing fields; leaves carry only
/// `value` and tag `feature` with [`LEAF_FEATURE`].
#[derive(Debug, Clone, Copy)]
pub struct FlatNode {
    /// Split feature index, or [`LEAF_FEATURE`] for a leaf.
    pub feature: u32,
    /// Raw-value threshold: `v <= threshold` goes left.
    pub threshold: f32,
    /// Where missing values (NaN) are routed.
    pub default_left: bool,
    /// Absolute index of the left child in the forest's node array.
    pub left: u32,
    /// Absolute index of the right child in the forest's node array.
    pub right: u32,
    /// The node's weight: the leaf weight, or the weight the split would
    /// have as a leaf (`-G/(H+λ)`, scaled by the learning rate) — what the
    /// Saabas attribution walk reads off the decision path.
    pub value: f64,
}

impl FlatNode {
    /// True when the node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.feature == LEAF_FEATURE
    }

    /// The split feature as a usize, or `None` for a leaf.
    #[inline]
    pub fn split_feature(&self) -> Option<usize> {
        if self.is_leaf() {
            None
        } else {
            Some(self.feature as usize)
        }
    }
}

/// A [`GbdtModel`] lowered into contiguous node arrays.
///
/// Construction preserves everything prediction and attribution need (base
/// margin, node values, feature names); hyper-parameters and covers stay on
/// the source model / artifact.
#[derive(Debug, Clone)]
pub struct FlatForest {
    base_margin: f64,
    /// Every tree's nodes, back to back, children as absolute indices.
    nodes: Vec<FlatNode>,
    /// Start of each tree in `nodes`, plus one trailing end sentinel.
    tree_offsets: Vec<u32>,
    feature_names: Vec<String>,
    /// Feature name → column index, precomputed for per-request resolution.
    name_index: HashMap<String, usize>,
}

impl FlatForest {
    /// Lower a trained model into the flat representation.
    pub fn from_model(model: &GbdtModel) -> Self {
        let total: usize = model.trees().iter().map(|t| t.nodes().len()).sum();
        assert!(
            total < LEAF_FEATURE as usize,
            "forest too large for u32 node indices"
        );
        let mut nodes = Vec::with_capacity(total);
        let mut tree_offsets = Vec::with_capacity(model.n_trees() + 1);
        for tree in model.trees() {
            let off = nodes.len() as u32;
            tree_offsets.push(off);
            for node in tree.nodes() {
                nodes.push(match node {
                    Node::Leaf { value, .. } => FlatNode {
                        feature: LEAF_FEATURE,
                        threshold: 0.0,
                        default_left: false,
                        left: 0,
                        right: 0,
                        value: *value,
                    },
                    Node::Split {
                        feature,
                        threshold,
                        default_left,
                        left,
                        right,
                        value,
                        ..
                    } => FlatNode {
                        feature: *feature as u32,
                        threshold: *threshold,
                        default_left: *default_left,
                        left: off + *left as u32,
                        right: off + *right as u32,
                        value: *value,
                    },
                });
            }
        }
        tree_offsets.push(nodes.len() as u32);
        let feature_names = model.feature_names().to_vec();
        let name_index = build_name_index(&feature_names);
        Self {
            base_margin: model.base_margin(),
            nodes,
            tree_offsets,
            feature_names,
            name_index,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.tree_offsets.len() - 1
    }

    /// Number of features a scoring row must have.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Total node count across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant margin the ensemble starts from.
    pub fn base_margin(&self) -> f64 {
        self.base_margin
    }

    /// Names of the features, in model column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Column index of a feature by name (O(1)).
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// A node by absolute index.
    pub fn node(&self, i: u32) -> &FlatNode {
        &self.nodes[i as usize]
    }

    /// Absolute index of a tree's root node.
    pub fn tree_root(&self, tree: usize) -> u32 {
        self.tree_offsets[tree]
    }

    /// The leaf weight one tree contributes for a row.
    #[inline]
    pub fn tree_leaf_value(&self, tree: usize, row: &[f32]) -> f64 {
        let mut i = self.tree_offsets[tree] as usize;
        loop {
            let n = &self.nodes[i];
            if n.feature == LEAF_FEATURE {
                return n.value;
            }
            let v = row[n.feature as usize];
            let go_left = if v.is_nan() {
                n.default_left
            } else {
                v <= n.threshold
            };
            i = if go_left { n.left } else { n.right } as usize;
        }
    }

    /// Raw additive margin (log-odds) for a feature row — bit-identical to
    /// [`GbdtModel::predict_margin`]: the trees are folded left to right
    /// from `0.0` and the base margin is added last, exactly as the
    /// recursive path's `iter().sum::<f64>()` does.
    ///
    /// # Panics
    /// Panics when `row` is narrower than the model's feature count.
    pub fn predict_margin(&self, row: &[f32]) -> f64 {
        let mut sum = 0.0f64;
        for tree in 0..self.n_trees() {
            sum += self.tree_leaf_value(tree, row);
        }
        self.base_margin + sum
    }

    /// Probability of the positive (suspicious / likely-unserved) class.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.predict_margin(row))
    }

    /// The absolute node indices one tree visits for a row, root to leaf —
    /// the path structure the attribution module walks. Identical (up to the
    /// tree's base offset) to [`RegressionTree::decision_path`].
    ///
    /// [`RegressionTree::decision_path`]: crate::tree::RegressionTree::decision_path
    pub fn decision_path(&self, tree: usize, row: &[f32]) -> Vec<u32> {
        let mut path = Vec::new();
        let mut i = self.tree_offsets[tree];
        loop {
            path.push(i);
            let n = &self.nodes[i as usize];
            if n.feature == LEAF_FEATURE {
                return path;
            }
            let v = row[n.feature as usize];
            let go_left = if v.is_nan() {
                n.default_left
            } else {
                v <= n.threshold
            };
            i = if go_left { n.left } else { n.right };
        }
    }
}

/// Name → index map preserving first-wins semantics for duplicate names
/// (matching `Iterator::position` on the name list). Shared by
/// [`FlatForest`], `Dataset` and the serving layer's per-request column
/// resolution, so name lookup is O(1) on every path.
pub fn build_name_index(names: &[String]) -> HashMap<String, usize> {
    let mut map = HashMap::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        map.entry(name.clone()).or_insert(i);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::gbdt::GbdtParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(rng: &mut StdRng, n_rows: usize, n_features: usize) -> Dataset {
        let names: Vec<String> = (0..n_features).map(|f| format!("f{f}")).collect();
        let mut d = Dataset::new(names);
        for _ in 0..n_rows {
            let row: Vec<f32> = (0..n_features)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.05 {
                        f32::NAN
                    } else {
                        rng.gen_range(-2.0..2.0)
                    }
                })
                .collect();
            let signal = if row[0].is_nan() { 0.0 } else { row[0] };
            let label = if signal + rng.gen_range(-0.3..0.3) > 0.0 {
                1.0
            } else {
                0.0
            };
            d.push_row(&row, label);
        }
        d
    }

    /// Seeded-loop property test: for random models and random rows
    /// (including NaNs), the flat traversal reproduces the recursive margin
    /// bit for bit, tree by tree.
    #[test]
    fn flat_predictions_bit_identical_to_recursive() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(0xf1a7 + seed);
            let n_features = rng.gen_range(2..7usize);
            let data = random_dataset(&mut rng, 160, n_features);
            let model = GbdtModel::fit(
                &data,
                GbdtParams {
                    n_estimators: 12,
                    max_depth: rng.gen_range(1..5usize),
                    learning_rate: 0.3,
                    subsample: 0.8,
                    colsample_bytree: 0.8,
                    seed,
                    ..GbdtParams::default()
                },
            );
            let forest = FlatForest::from_model(&model);
            assert_eq!(forest.n_trees(), model.n_trees());
            assert_eq!(forest.n_features(), model.feature_names().len());
            for r in 0..data.n_rows() {
                let row = data.row(r);
                assert_eq!(
                    forest.predict_margin(row).to_bits(),
                    model.predict_margin(row).to_bits(),
                    "margin drift at seed {seed} row {r}"
                );
                for (t, tree) in model.trees().iter().enumerate() {
                    assert_eq!(
                        forest.tree_leaf_value(t, row).to_bits(),
                        tree.predict_row(row).to_bits(),
                        "tree {t} drift at seed {seed} row {r}"
                    );
                }
            }
            // All-missing rows exercise every default direction.
            let missing = vec![f32::NAN; n_features];
            assert_eq!(
                forest.predict_margin(&missing).to_bits(),
                model.predict_margin(&missing).to_bits()
            );
        }
    }

    /// The flat decision path is the recursive decision path shifted by the
    /// tree's base offset — node for node.
    #[test]
    fn flat_paths_match_recursive_paths() {
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let data = random_dataset(&mut rng, 200, 4);
        let model = GbdtModel::fit(
            &data,
            GbdtParams {
                n_estimators: 10,
                max_depth: 4,
                learning_rate: 0.2,
                ..GbdtParams::default()
            },
        );
        let forest = FlatForest::from_model(&model);
        for r in (0..data.n_rows()).step_by(17) {
            let row = data.row(r);
            for (t, tree) in model.trees().iter().enumerate() {
                let off = forest.tree_root(t);
                let flat: Vec<usize> = forest
                    .decision_path(t, row)
                    .into_iter()
                    .map(|i| (i - off) as usize)
                    .collect();
                assert_eq!(flat, tree.decision_path(row), "path drift in tree {t}");
            }
        }
    }

    #[test]
    fn flat_layout_is_contiguous_and_self_contained() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_dataset(&mut rng, 120, 3);
        let model = GbdtModel::fit(
            &data,
            GbdtParams {
                n_estimators: 5,
                max_depth: 3,
                ..GbdtParams::default()
            },
        );
        let forest = FlatForest::from_model(&model);
        let expected: usize = model.trees().iter().map(|t| t.nodes().len()).sum();
        assert_eq!(forest.n_nodes(), expected);
        // Children stay inside their own tree's node range and strictly
        // after their parent (the builder emits children after parents), so
        // traversal always terminates.
        for t in 0..forest.n_trees() {
            let start = forest.tree_root(t);
            let end = forest.tree_offsets[t + 1];
            for i in start..end {
                let n = forest.node(i);
                if !n.is_leaf() {
                    assert!(n.left > i && n.left < end);
                    assert!(n.right > i && n.right < end);
                    assert!((n.feature as usize) < forest.n_features());
                }
            }
        }
    }

    #[test]
    fn feature_index_resolves_names() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_dataset(&mut rng, 80, 3);
        let model = GbdtModel::fit(&data, GbdtParams::default());
        let forest = FlatForest::from_model(&model);
        assert_eq!(forest.feature_index("f0"), Some(0));
        assert_eq!(forest.feature_index("f2"), Some(2));
        assert_eq!(forest.feature_index("missing"), None);
    }
}
