//! A hierarchical hexagonal discrete global grid and the Web-Mercator quadkey
//! tile system.
//!
//! The National Broadband Map publishes provider availability claims at the
//! granularity of **H3 resolution-8 hexagons** (~0.7 km² cells), and the public
//! Ookla speed-test dataset is aggregated on **Bing-Maps quadkey tiles**
//! (~500 m at zoom 16). The `red_is_sus` pipeline therefore needs both grid
//! systems and a way to re-project one onto the other (Appendix D of the
//! paper).
//!
//! Licensing prevents us from shipping Uber's H3 library or CostQuest data, so
//! this crate implements a **substitute discrete global grid**: an aperture-7
//! hierarchy of pointy-top hexagons laid out on a Lambert cylindrical
//! equal-area projection. Like H3 it provides
//!
//! * 64-bit cell indices that pack a resolution and a lattice position,
//! * 16 resolutions with aperture-7 scaling (each resolution has 7× the cells
//!   of the previous one); resolution 8 cells cover ≈ 0.73 km², matching H3's
//!   0.737 km² average,
//! * cell ↔ centroid ↔ boundary conversions, k-ring neighbourhoods
//!   (`grid_disk`), and approximate parent/child navigation.
//!
//! The pipeline only relies on the grid being a deterministic, near-equal-area
//! tiling with stable ids and local neighbourhood queries; it never depends on
//! H3's exact icosahedral geometry, so this substitution preserves every
//! downstream behaviour (see DESIGN.md §2).

pub mod cell;
pub mod grid;
pub mod quadkey;
pub mod reproject;

pub use cell::HexCell;
pub use grid::{Resolution, MAX_RESOLUTION, NBM_RESOLUTION};
pub use quadkey::{QuadTile, OOKLA_ZOOM};
pub use reproject::{cover_tile_with_hexes, reproject_to_hexes};

#[cfg(test)]
mod proptests {
    //! Property-style tests over seeded random inputs. The environment has no
    //! registry access for the real `proptest`, so each property is checked
    //! over a deterministic sample of the input space instead of a shrinking
    //! search; the invariants are unchanged.

    use super::*;
    use geoprim::LatLng;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CASES: usize = 250;

    /// Latitude range where the US (including Alaska) lives; the grid is only
    /// exercised there by the pipeline.
    fn us_latlng(rng: &mut StdRng) -> LatLng {
        LatLng::new(rng.gen_range(18.0..71.5), rng.gen_range(-179.0..-65.0))
    }

    /// A cell's centroid must map back to the same cell at the same
    /// resolution — the fundamental round-trip invariant of any DGGS.
    #[test]
    fn centroid_round_trips() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let res = Resolution::new(rng.gen_range(0..=10u8)).unwrap();
            let cell = HexCell::containing(&p, res);
            let back = HexCell::containing(&cell.center(), res);
            assert_eq!(cell, back, "centroid of {cell:?} left the cell");
        }
    }

    /// Packing and unpacking a cell index is lossless.
    #[test]
    fn index_round_trips() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let res = Resolution::new(rng.gen_range(0..=12u8)).unwrap();
            let cell = HexCell::containing(&p, res);
            let reconstructed = HexCell::from_index(cell.index()).unwrap();
            assert_eq!(cell, reconstructed);
            assert_eq!(reconstructed.resolution(), res);
        }
    }

    /// The generating point is always inside (or on the boundary of) the
    /// cell's hexagonal boundary polygon, within a small tolerance ring.
    #[test]
    fn point_near_boundary_center() {
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let cell = HexCell::containing(&p, NBM_RESOLUTION);
            let d = cell.center().haversine_km(&p);
            // Circumradius of a res-8 cell is ~0.53 km; allow slack for the
            // projection distortion at high latitude.
            assert!(d < 1.6, "point {p:?} was {d} km from centroid");
        }
    }

    /// grid_disk(k) always contains the origin cell and grows with k.
    #[test]
    fn grid_disk_contains_origin() {
        let mut rng = StdRng::seed_from_u64(0xD15C);
        for _ in 0..60 {
            let p = us_latlng(&mut rng);
            let k = rng.gen_range(0..4usize);
            let cell = HexCell::containing(&p, NBM_RESOLUTION);
            let disk = cell.grid_disk(k);
            assert!(disk.contains(&cell));
            let bigger = cell.grid_disk(k + 1);
            assert!(bigger.len() > disk.len());
            for c in &disk {
                assert!(bigger.contains(c));
            }
        }
    }

    /// The parent of a cell is the cell at the coarser resolution that
    /// contains the child's centroid.
    #[test]
    fn parent_contains_child_centroid() {
        let mut rng = StdRng::seed_from_u64(0xAB1E);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let res = Resolution::new(rng.gen_range(1..=10u8)).unwrap();
            let cell = HexCell::containing(&p, res);
            let parent = cell.parent().unwrap();
            assert_eq!(parent.resolution().level(), res.level() - 1);
            let expected = HexCell::containing(&cell.center(), parent.resolution());
            assert_eq!(parent, expected);
        }
    }

    /// Quadkey string encode/decode round-trips.
    #[test]
    fn quadkey_string_round_trips() {
        let mut rng = StdRng::seed_from_u64(0x9E0);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let zoom = rng.gen_range(1..=20u8);
            let tile = QuadTile::containing(&p, zoom);
            let key = tile.quadkey();
            assert_eq!(key.len(), zoom as usize);
            let back = QuadTile::from_quadkey(&key).unwrap();
            assert_eq!(tile, back);
        }
    }

    /// A tile's centre is inside its own bounds, and the containing tile of
    /// the centre is the tile itself.
    #[test]
    fn quadtile_center_round_trips() {
        let mut rng = StdRng::seed_from_u64(0x7EA);
        for _ in 0..CASES {
            let p = us_latlng(&mut rng);
            let zoom = rng.gen_range(1..=20u8);
            let tile = QuadTile::containing(&p, zoom);
            let c = tile.center();
            assert!(tile.bounds().contains(&c));
            assert_eq!(QuadTile::containing(&c, zoom), tile);
        }
    }
}
