//! Criterion benches of the serving subsystem: artifact encode/decode/load,
//! flattened vs recursive traversal, and the batch scorer's worker sweep.
//!
//! Alongside wall-clock, the bench reports rows/sec throughput metrics for
//! the recursive and flattened paths — the number that matters for a
//! scoring service — plus the artifact's size on the wire.
//!
//! Regenerate the committed report with (from the workspace root; the path
//! must be absolute because cargo runs the bench binary with `crates/bench`
//! as its working directory):
//!
//! ```sh
//! BENCH_JSON=$PWD/BENCH_serve.json cargo bench -p redsus_bench --bench serving
//! ```

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, report_metric, Criterion};
use ml::FlatForest;
use redsus_bench::bench_suite;
use redsus_serve::{
    decode_model, encode_model, score_dataset, ScoreMode, ScoreOutput, ServedModel,
};

/// Best-of-N wall-clock of one closure, in seconds.
fn best_seconds(n: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_serving(c: &mut Criterion) {
    let suite = bench_suite(5);
    let model = &suite.observation_holdout.model;
    let data = &suite.matrix.dataset;
    let forest = FlatForest::from_model(model);
    let bytes = encode_model(model);

    report_metric("serving/artifact_bytes", bytes.len() as f64, "bytes");
    report_metric("serving/forest_trees", forest.n_trees() as f64, "trees");
    report_metric("serving/forest_nodes", forest.n_nodes() as f64, "nodes");
    report_metric("serving/scored_rows", data.n_rows() as f64, "rows");

    let mut group = c.benchmark_group("serving_artifact");
    group.sample_size(20);
    group.bench_function("encode", |b| b.iter(|| black_box(encode_model(model))));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(decode_model(&bytes).expect("decode")))
    });
    group.bench_function("load_and_flatten", |b| {
        // What a serving process pays at startup: decode + FlatForest.
        b.iter(|| black_box(ServedModel::from_bytes(&bytes).expect("load")))
    });
    group.finish();

    let mut group = c.benchmark_group("serving_scoring");
    group.sample_size(10);
    group.bench_function("recursive_predict_dataset", |b| {
        b.iter(|| black_box(model.predict_dataset(data)))
    });
    group.bench_function("flat_sequential", |b| {
        b.iter(|| {
            black_box(score_dataset(
                &forest,
                data,
                ScoreOutput::Probability,
                ScoreMode::Sequential,
            ))
        })
    });
    // Worker sweep: on multicore hosts the fan-out shrinks wall-clock; on
    // the 1-core CI container it documents the (bit-identical) overhead of
    // forcing workers.
    for workers in [2usize, 4] {
        group.bench_function(format!("flat_threads{workers}"), |b| {
            b.iter(|| {
                black_box(score_dataset(
                    &forest,
                    data,
                    ScoreOutput::Probability,
                    ScoreMode::Threads(workers),
                ))
            })
        });
    }
    group.finish();

    // Throughput metrics: rows/sec at best-of-10, the number a capacity
    // plan starts from.
    let n_rows = data.n_rows() as f64;
    let recursive = best_seconds(10, || {
        black_box(model.predict_dataset(data));
    });
    let flat = best_seconds(10, || {
        black_box(score_dataset(
            &forest,
            data,
            ScoreOutput::Probability,
            ScoreMode::Sequential,
        ));
    });
    report_metric(
        "serving/recursive_rows_per_sec",
        n_rows / recursive,
        "rows/s",
    );
    report_metric("serving/flat_rows_per_sec", n_rows / flat, "rows/s");
    report_metric("serving/flat_speedup", recursive / flat, "x");
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
