//! Domain model for the FCC's Broadband Data Collection (BDC) and the
//! National Broadband Map (NBM).
//!
//! This crate encodes, as plain data types, everything the paper's pipeline
//! reads out of the regulatory process:
//!
//! * the **Broadband Serviceable Location Fabric** ([`fabric`]) — the set of
//!   structures providers may claim service at,
//! * per-location **availability filings** ([`filing`], Table 1 of the paper),
//! * **providers** and their free-text filing methodologies ([`provider`]),
//! * aggregated **NBM releases** and the public per-hex view ([`nbm`]),
//! * the **diff engine** over successive releases that recovers non-archived
//!   changes ([`diff`], §4.1.3),
//! * the **challenge process** with its outcomes and reasons ([`challenge`],
//!   Tables 2 and 3).
//!
//! The crate is purely a data model: generation of synthetic instances lives
//! in the `synth` crate and label construction lives in `redsus-core`.

pub mod challenge;
pub mod diff;
pub mod fabric;
pub mod filing;
pub mod ids;
pub mod nbm;
pub mod provider;
pub mod source;
pub mod stream;
pub mod tech;
pub mod time;

pub use challenge::{Challenge, ChallengeOutcome, ChallengeReason};
pub use diff::{ClaimChange, ClaimChangeKind, MapDiff};
pub use fabric::{Bsl, Fabric, FabricView};
pub use filing::{AvailabilityRecord, Filing, ServiceType};
pub use ids::{Asn, Frn, LocationId, ProviderId};
pub use nbm::{ClaimKey, HexClaim, NbmRelease, ReleaseVersion};
pub use provider::{Provider, ProviderRegistry};
pub use source::{EmptyStream, SourceMeta, StreamReport, StreamStage, WorldSource};
pub use stream::{
    collect_shards, diff_releases, drain_shards, map_shards, ClaimEntry, ClaimStream, DiffChain,
    DiffMode, DiffOutcome, DiffPairReport, FabricStream, MeterInstruments, ReleaseStream,
    ResidencyMeter, ShardStream, ShardableRelease, SortedClaimStream, SpeedTestStream, StreamStats,
    StreamingDiff, DEFAULT_DIFF_CHUNK,
};
pub use tech::Technology;
pub use time::DayStamp;
