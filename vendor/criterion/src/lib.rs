//! Vendored stand-in for the slice of `criterion` this workspace uses.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides a small, honest wall-clock harness behind criterion's API shape:
//! `Criterion::benchmark_group`, `group.sample_size(..)`,
//! `group.bench_function(name, |b| b.iter(..))`, `group.finish()` and the
//! `criterion_group!`/`criterion_main!` macros (benches must set
//! `harness = false`, exactly as with the real crate).
//!
//! Each benchmark is warmed up, then measured over `sample_size` samples; the
//! harness prints the per-iteration mean/min and, when the `BENCH_JSON`
//! environment variable names a path, writes every result from the bench
//! binary to a JSON report — the mechanism behind the repo's committed
//! `BENCH_baseline.json`. Each bench binary overwrites the file, so point
//! `BENCH_JSON` at one `--bench` target at a time.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured benchmark: name and per-iteration statistics in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One auxiliary, non-timing metric reported by a bench binary (peak
/// resident elements, bytes, counts …). Not part of upstream criterion's
/// API; the repo's benches use it to commit memory-model evidence (e.g.
/// `BENCH_diff.json`'s peak-entry counts) alongside wall-clock numbers.
#[derive(Debug, Clone)]
pub struct MetricResult {
    pub name: String,
    pub value: f64,
    pub unit: String,
}

static METRICS: Mutex<Vec<MetricResult>> = Mutex::new(Vec::new());

/// Record an auxiliary metric; it is printed immediately and written to the
/// `BENCH_JSON` report's `metrics` section by [`criterion_main!`].
pub fn report_metric(name: impl Into<String>, value: f64, unit: impl Into<String>) {
    let metric = MetricResult {
        name: name.into(),
        value,
        unit: unit.into(),
    };
    println!("{:<50} {:>12.1} {}", metric.name, metric.value, metric.unit);
    METRICS.lock().unwrap().push(metric);
}

/// Top-level harness handle, created by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group; benchmark names are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());

        // Warm-up + calibration: run single iterations until ~50ms elapse to
        // pick an iteration count giving samples of at least ~10ms each.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        let mut bencher = Bencher::default();
        while calib_start.elapsed() < Duration::from_millis(50) && calib_iters < 1_000 {
            bencher.reset(1);
            f(&mut bencher);
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let iters_per_sample = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut sample_means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.reset(iters_per_sample);
            f(&mut bencher);
            sample_means.push(bencher.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let mean_ns = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
        let min_ns = sample_means.iter().cloned().fold(f64::INFINITY, f64::min);

        println!(
            "{full:<50} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
            self.sample_size,
            iters_per_sample,
        );
        RESULTS.lock().unwrap().push(BenchResult {
            name: full,
            mean_ns,
            min_ns,
            samples: self.sample_size,
            iters_per_sample,
        });
        self
    }

    /// End the group (kept for API parity; reporting happens incrementally).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn reset(&mut self, iters: u64) {
        self.iters = iters;
        self.elapsed = Duration::ZERO;
    }

    /// Run the payload `iters` times and record the total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters.max(1) {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Write all results collected so far as a JSON report to `BENCH_JSON` (no-op
/// when the variable is unset). Called by [`criterion_main!`] after all groups
/// run.
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let metrics = METRICS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}",
            r.name, r.mean_ns, r.min_ns, r.samples, r.iters_per_sample,
        );
    }
    if metrics.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n  \"metrics\": [\n");
        for (i, m) in metrics.iter().enumerate() {
            let comma = if i + 1 < metrics.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"value\": {:.1}, \"unit\": \"{}\"}}{comma}",
                m.name, m.value, m.unit,
            );
        }
        out.push_str("  ]\n}\n");
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote benchmark report to {path}");
    }
}

/// Mirror of criterion's macro: defines a runner function invoking each
/// benchmark function with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of criterion's macro: defines `main` running every group, then
/// emitting the optional JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(1);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let results = RESULTS.lock().unwrap();
        let r = results.iter().find(|r| r.name == "unit/noop").unwrap();
        assert!(r.mean_ns >= 0.0);
        assert_eq!(r.samples, 1);
    }

    #[test]
    fn report_metric_records_a_metric() {
        report_metric("unit/peak_entries", 123.0, "entries");
        let metrics = METRICS.lock().unwrap();
        let m = metrics
            .iter()
            .find(|m| m.name == "unit/peak_entries")
            .unwrap();
        assert_eq!(m.value, 123.0);
        assert_eq!(m.unit, "entries");
    }
}
