//! Generating providers, their footprints, reporting behaviour and the
//! ground-truth / claimed service sets.
//!
//! Provider generation is sharded per provider: provider `i` draws only from
//! the `(seed, Providers, i)` stream, so the population is bit-identical for
//! any worker count. Claim computation consumes no randomness at all and is
//! likewise fanned per provider.

use std::collections::BTreeMap;

use bdc::{Frn, LocationId, Provider, ProviderId, Technology};
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::SynthConfig;
use crate::fabric_gen::Town;
use crate::shard::{map_shards, shard_rng, SynthStage};
use crate::text::{provider_name, MethodologyKind, MAJOR_PROVIDER_NAMES};

/// How faithfully a provider's filing reflects its real network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportingStyle {
    /// Claims only what it truly serves.
    Accurate,
    /// Modest edge over-claiming (optimistic buffers).
    Typical,
    /// Substantial over-claiming (e.g. whole-census-block reporting).
    Aggressive,
    /// Deliberate misrepresentation of a large unserved area — the Jefferson
    /// County Cable pattern (§6.3).
    IntentionalOverclaim,
}

impl ReportingStyle {
    /// Radius multiplier applied to the true service radius when filing.
    pub fn overclaim_multiplier(&self) -> f64 {
        match self {
            ReportingStyle::Accurate => 1.0,
            ReportingStyle::Typical => 1.18,
            ReportingStyle::Aggressive => 1.55,
            ReportingStyle::IntentionalOverclaim => 1.25,
        }
    }
}

/// One technology a provider deploys, with its true service radius around
/// each footprint town and the advertised speeds.
#[derive(Debug, Clone)]
pub struct TechDeployment {
    pub technology: Technology,
    /// Radius (km) around each footprint town that is genuinely serviceable.
    pub true_radius_km: f64,
    pub max_down_mbps: f64,
    pub max_up_mbps: f64,
    pub low_latency: bool,
}

/// A provider plus everything the generator knows about it.
#[derive(Debug, Clone)]
pub struct ProviderProfile {
    pub provider: Provider,
    /// Indices into the town list forming the provider's footprint.
    pub towns: Vec<usize>,
    pub deployments: Vec<TechDeployment>,
    pub style: ReportingStyle,
    pub methodology: MethodologyKind,
    /// True for the Jefferson-County-Cable-style scenario provider.
    pub jcc_like: bool,
}

/// A location-level claim with its ground truth.
#[derive(Debug, Clone)]
pub struct ClaimTruth {
    pub location: LocationId,
    pub technology: Technology,
    pub truly_served: bool,
    pub max_down_mbps: f64,
    pub max_up_mbps: f64,
    pub low_latency: bool,
}

fn speeds_for(rng: &mut StdRng, tech: Technology) -> (f64, f64, bool) {
    let max = tech.typical_max_down_mbps();
    let tier = [0.1, 0.25, 0.5, 1.0][rng.gen_range(0..4)];
    let down = (max * tier).max(10.0);
    let up = match tech {
        Technology::Fiber => down,
        Technology::Cable => (down / 20.0).max(5.0),
        Technology::Copper => (down / 10.0).max(1.0),
        _ => (down / 8.0).max(3.0),
    };
    let low_latency = !matches!(tech, Technology::GsoSatellite);
    (down, up, low_latency)
}

fn radius_for(rng: &mut StdRng, tech: Technology) -> f64 {
    match tech {
        Technology::Fiber => rng.gen_range(1.5..4.0),
        Technology::Cable => rng.gen_range(2.0..5.0),
        Technology::Copper => rng.gen_range(2.5..6.0),
        Technology::UnlicensedFixedWireless => rng.gen_range(4.0..10.0),
        Technology::LicensedFixedWireless => rng.gen_range(5.0..12.0),
        // Not drawn by the generator (only real ingest maps these codes);
        // present so the match stays exhaustive over the full BDC code table.
        Technology::LicensedByRuleFixedWireless => rng.gen_range(4.0..10.0),
        Technology::Other => rng.gen_range(2.0..6.0),
        Technology::GsoSatellite | Technology::NgsoSatellite => 1.0e6,
    }
}

/// Generate the provider population: `n_major_providers` national ISPs and a
/// long tail of regional and local providers, one shard per provider.
pub fn generate_providers(
    config: &SynthConfig,
    towns: &[Town],
    workers: usize,
) -> Vec<ProviderProfile> {
    let seqs: Vec<usize> = (0..config.n_providers).collect();
    map_shards(workers, &seqs, |_, &seq| {
        let mut rng = shard_rng(config.seed, SynthStage::Providers, seq as u64);
        if seq < config.n_major_providers {
            generate_major(config, towns, seq, &mut rng)
        } else {
            generate_regional(config, towns, seq, &mut rng)
        }
    })
}

/// One major national ISP: a large multi-state footprint, cable and/or fiber.
fn generate_major(
    _config: &SynthConfig,
    towns: &[Town],
    seq: usize,
    rng: &mut StdRng,
) -> ProviderProfile {
    let next_id = seq as u32 + 1;
    let name = MAJOR_PROVIDER_NAMES[seq % MAJOR_PROVIDER_NAMES.len()].to_string();
    let share = rng.gen_range(0.25..0.45);
    let mut footprint: Vec<usize> = (0..towns.len()).filter(|_| rng.gen_bool(share)).collect();
    if footprint.is_empty() {
        footprint.push(rng.gen_range(0..towns.len()));
    }
    let mut deployments = vec![];
    for tech in [Technology::Cable, Technology::Fiber] {
        if rng.gen_bool(0.8) {
            let (down, up, low_latency) = speeds_for(rng, tech);
            deployments.push(TechDeployment {
                technology: tech,
                true_radius_km: radius_for(rng, tech),
                max_down_mbps: down,
                max_up_mbps: up,
                low_latency,
            });
        }
    }
    if deployments.is_empty() {
        let (down, up, low_latency) = speeds_for(rng, Technology::Cable);
        deployments.push(TechDeployment {
            technology: Technology::Cable,
            true_radius_km: radius_for(rng, Technology::Cable),
            max_down_mbps: down,
            max_up_mbps: up,
            low_latency,
        });
    }
    let style = if rng.gen_bool(0.6) {
        ReportingStyle::Typical
    } else {
        ReportingStyle::Accurate
    };
    let home_state = towns[footprint[0]].state.clone();
    ProviderProfile {
        provider: Provider {
            id: ProviderId(next_id),
            name: name.clone(),
            brand: name.split(' ').next().unwrap_or(&name).to_string(),
            frns: vec![Frn(1_000_000 + next_id as u64)],
            technologies: deployments.iter().map(|d| d.technology).collect(),
            major: true,
            home_state,
        },
        towns: footprint,
        deployments,
        style,
        methodology: MethodologyKind::FiberEngineering,
        jcc_like: false,
    }
}

/// One regional/local provider with a handful of towns, preferentially in
/// one state.
fn generate_regional(
    config: &SynthConfig,
    towns: &[Town],
    seq: usize,
    rng: &mut StdRng,
) -> ProviderProfile {
    let next_id = seq as u32 + 1;
    let name = provider_name(rng);
    // Footprint: a handful of towns, preferentially in one state.
    let anchor = rng.gen_range(0..towns.len());
    let anchor_state = towns[anchor].state.clone();
    let n_towns = 1 + rng.gen_range(0..4usize);
    let mut footprint = vec![anchor];
    let same_state: Vec<usize> = (0..towns.len())
        .filter(|&t| towns[t].state == anchor_state && t != anchor)
        .collect();
    for _ in 1..n_towns {
        if !same_state.is_empty() && rng.gen_bool(0.8) {
            footprint.push(same_state[rng.gen_range(0..same_state.len())]);
        } else {
            footprint.push(rng.gen_range(0..towns.len()));
        }
    }
    footprint.sort_unstable();
    footprint.dedup();

    let tech = match rng.gen_range(0..10) {
        0..=2 => Technology::Fiber,
        3..=4 => Technology::Cable,
        5..=6 => Technology::Copper,
        7..=8 => Technology::UnlicensedFixedWireless,
        _ => Technology::LicensedFixedWireless,
    };
    let (down, up, low_latency) = speeds_for(rng, tech);
    let mut deployments = vec![TechDeployment {
        technology: tech,
        true_radius_km: radius_for(rng, tech),
        max_down_mbps: down,
        max_up_mbps: up,
        low_latency,
    }];
    // Some providers file a legacy copper offering alongside.
    if tech == Technology::Fiber && rng.gen_bool(0.3) {
        let (d2, u2, _) = speeds_for(rng, Technology::Copper);
        deployments.push(TechDeployment {
            technology: Technology::Copper,
            true_radius_km: radius_for(rng, Technology::Copper),
            max_down_mbps: d2,
            max_up_mbps: u2,
            low_latency: true,
        });
    }

    // Reporting style and stated methodology are only loosely correlated:
    // aggressive filers are more likely to describe census-block
    // reporting, but plenty of careful filers use the same consultant
    // boilerplate, so the methodology text alone cannot identify the
    // over-claimers (mirroring reality — the paper finds the embedding is
    // a secondary signal, not a provider fingerprint).
    let style = match rng.gen_range(0..10) {
        0..=3 => ReportingStyle::Accurate,
        4..=7 => ReportingStyle::Typical,
        _ => ReportingStyle::Aggressive,
    };
    let census_block_prob = if style == ReportingStyle::Aggressive {
        0.3
    } else {
        0.1
    };
    let methodology = if rng.gen_bool(census_block_prob) {
        MethodologyKind::CensusBlocks
    } else if matches!(
        tech,
        Technology::UnlicensedFixedWireless | Technology::LicensedFixedWireless
    ) {
        MethodologyKind::PropagationModel
    } else {
        match rng.gen_range(0..10) {
            0..=3 => MethodologyKind::SubscriberAddresses,
            4..=7 => MethodologyKind::ConsultantTemplate,
            _ => MethodologyKind::FiberEngineering,
        }
    };

    // The very last regional provider becomes the JCC-style intentional
    // over-claimer when the scenario is enabled.
    let jcc_like = config.include_jcc && seq == config.n_providers - 1;
    let style = if jcc_like {
        ReportingStyle::IntentionalOverclaim
    } else {
        style
    };

    ProviderProfile {
        provider: Provider {
            id: ProviderId(next_id),
            name: name.clone(),
            brand: name.split(',').next().unwrap_or(&name).trim().to_string(),
            frns: vec![Frn(1_000_000 + next_id as u64)],
            technologies: deployments.iter().map(|d| d.technology).collect(),
            major: false,
            home_state: anchor_state,
        },
        towns: footprint,
        deployments,
        style,
        methodology: if jcc_like {
            MethodologyKind::CensusBlocks
        } else {
            methodology
        },
        jcc_like,
    }
}

/// Maximum distance a generated BSL can scatter from its own town centre
/// (see `fabric_gen::town_bsls`: 92% inside a 3.8 km disc, rural tail
/// strictly below 10 km). A hair of slack absorbs `destination`/`haversine`
/// round-trip error; the only cost of slack is scanning a few extra towns.
const MAX_BSL_SCATTER_KM: f64 = 10.01;

/// Per-town access to the fabric's contiguous BSL blocks — the only fabric
/// access pruned claim scanning needs. The materialised path slices a
/// resident [`bdc::Fabric`] ([`FabricTownBsls`]); the streaming path
/// regenerates blocks on demand from the per-town RNG streams.
pub trait TownBsls: Sync {
    /// Visit town `town_index`'s BSLs in location-id order.
    fn with_town(&self, town_index: usize, visit: &mut dyn FnMut(&[bdc::Bsl]));
}

/// [`TownBsls`] over a resident fabric: town `i`'s block is the slice at its
/// prefix-sum offset (the fabric stores BSLs in generation order).
pub struct FabricTownBsls<'a> {
    fabric: &'a bdc::Fabric,
    towns: &'a [Town],
    offsets: Vec<u64>,
}

impl<'a> FabricTownBsls<'a> {
    pub fn new(fabric: &'a bdc::Fabric, towns: &'a [Town]) -> Self {
        let offsets = crate::fabric_gen::town_offsets(towns);
        let total: u64 = offsets
            .last()
            .map(|&o| o + towns.last().map(|t| t.n_bsls as u64).unwrap_or(0))
            .unwrap_or(0);
        assert_eq!(
            total,
            fabric.len() as u64,
            "FabricTownBsls requires the fabric generated from this town list"
        );
        Self {
            fabric,
            towns,
            offsets,
        }
    }
}

impl TownBsls for FabricTownBsls<'_> {
    fn with_town(&self, town_index: usize, visit: &mut dyn FnMut(&[bdc::Bsl])) {
        let start = self.offsets[town_index] as usize;
        let end = start + self.towns[town_index].n_bsls;
        visit(&self.fabric.bsls()[start..end]);
    }
}

/// Precomputed town geometry for pruned claim scanning: per-state town index
/// lists in town-index order, which is exactly the fabric's within-state
/// block order — so a pruned scan visits the same BSLs in the same order as
/// the old full-state scan, minus towns provably out of claiming range.
pub struct ClaimScanner<'a> {
    towns: &'a [Town],
    state_towns: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> ClaimScanner<'a> {
    pub fn new(towns: &'a [Town]) -> Self {
        let mut state_towns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, t) in towns.iter().enumerate() {
            state_towns.entry(t.state.as_str()).or_default().push(i);
        }
        Self { towns, state_towns }
    }

    pub fn towns(&self) -> &'a [Town] {
        self.towns
    }
}

/// Compute every provider's claims concurrently (claim computation draws no
/// randomness, so this is a pure fan-out over providers).
pub fn compute_all_claims(
    profiles: &[ProviderProfile],
    towns: &[Town],
    fabric: &bdc::Fabric,
    config: &SynthConfig,
    workers: usize,
) -> BTreeMap<ProviderId, Vec<ClaimTruth>> {
    let scanner = ClaimScanner::new(towns);
    let access = FabricTownBsls::new(fabric, towns);
    map_shards(workers, profiles, |_, p| {
        (
            p.provider.id,
            compute_claims_with(p, &scanner, &access, config),
        )
    })
    .into_iter()
    .collect()
}

/// Compute the provider's location-level claims together with their ground
/// truth, reading the fabric through a resident [`bdc::Fabric`]. Thin adapter
/// over [`compute_claims_with`] for callers that hold a materialised world.
pub fn compute_claims(
    profile: &ProviderProfile,
    towns: &[Town],
    fabric: &bdc::Fabric,
    config: &SynthConfig,
) -> Vec<ClaimTruth> {
    let scanner = ClaimScanner::new(towns);
    let access = FabricTownBsls::new(fabric, towns);
    compute_claims_with(profile, &scanner, &access, config)
}

/// Compute the provider's location-level claims together with their ground
/// truth. A location is *truly served* when it lies within the technology's
/// true radius of one of the provider's footprint towns; it is *claimed* when
/// it lies within the (style-inflated) filing radius. The JCC-style provider
/// additionally claims a broad western sector it does not serve at all.
///
/// The scan is spatially pruned: for each footprint town only same-state
/// towns whose centre lies within claiming reach (claim radius plus the
/// maximum BSL scatter) can contain a claimable BSL, so only their blocks
/// are visited — in town-index order, which keeps the claim list bit-identical
/// to a full state scan while touching a tiny fraction of a national fabric.
pub fn compute_claims_with(
    profile: &ProviderProfile,
    scanner: &ClaimScanner,
    bsls: &impl TownBsls,
    config: &SynthConfig,
) -> Vec<ClaimTruth> {
    compute_claims_observed(profile, scanner, bsls, config, &mut |_, _| {})
}

/// [`compute_claims_with`] with a claim observer: `observe` sees every claim
/// the instant it is produced, *together with the BSL it refers to* — the
/// hook the streaming national-scale world uses to capture each claim's hex
/// and state during the scan, instead of re-resolving locations against a
/// materialised fabric afterwards. The claim list returned is bit-identical
/// to [`compute_claims_with`]; the observer only watches.
pub fn compute_claims_observed(
    profile: &ProviderProfile,
    scanner: &ClaimScanner,
    bsls: &impl TownBsls,
    config: &SynthConfig,
    observe: &mut dyn FnMut(&ClaimTruth, &bdc::Bsl),
) -> Vec<ClaimTruth> {
    let towns = scanner.towns;
    let mut claims = Vec::new();
    let multiplier = profile.style.overclaim_multiplier() * (1.0 + config.overclaim_fraction / 4.0);
    // The JCC scenario: the provider also claims an entire neighbouring market
    // it does not serve at all — modelled as the nearest town (preferably in
    // the same state) that is *not* part of its real footprint.
    let phantom_town = if profile.jcc_like {
        phantom_market(profile, towns)
    } else {
        None
    };
    // Real footprint towns are scanned first so genuine service takes
    // precedence; the phantom market (if any) is scanned last and everything
    // claimed from it is unserved — the misrepresented region of Figure 8.
    let mut scan_towns: Vec<(usize, bool)> = profile.towns.iter().map(|&t| (t, false)).collect();
    if let Some(p) = phantom_town {
        scan_towns.push((p, true));
    }
    for deployment in &profile.deployments {
        let claim_radius = deployment.true_radius_km * multiplier;
        let mut seen: std::collections::HashSet<LocationId> = std::collections::HashSet::new();
        for &(town_idx, is_phantom) in &scan_towns {
            let town = &towns[town_idx];
            // Widest radius at which this scan can claim a BSL; anything in a
            // town whose centre is further than reach can never be claimed
            // (triangle inequality on the great-circle metric).
            let claim_reach = if is_phantom {
                deployment.true_radius_km.max(4.0)
            } else {
                claim_radius
            };
            let reach = claim_reach + MAX_BSL_SCATTER_KM;
            for &cand in &scanner.state_towns[town.state.as_str()] {
                if towns[cand].center.haversine_km(&town.center) > reach {
                    continue;
                }
                bsls.with_town(cand, &mut |block| {
                    for bsl in block {
                        if seen.contains(&bsl.id) {
                            continue;
                        }
                        let dist = town.center.haversine_km(&bsl.position);
                        let (truly_served, claimed) = if is_phantom {
                            (false, dist <= deployment.true_radius_km.max(4.0))
                        } else {
                            (dist <= deployment.true_radius_km, dist <= claim_radius)
                        };
                        if claimed {
                            seen.insert(bsl.id);
                            let claim = ClaimTruth {
                                location: bsl.id,
                                technology: deployment.technology,
                                truly_served,
                                max_down_mbps: deployment.max_down_mbps,
                                max_up_mbps: deployment.max_up_mbps,
                                low_latency: deployment.low_latency,
                            };
                            observe(&claim, bsl);
                            claims.push(claim);
                        }
                    }
                });
            }
        }
    }
    claims
}

/// The nearest town outside the provider's footprint (preferring the same
/// state as its anchor town) — the "market next door" a JCC-style provider
/// falsely claims.
fn phantom_market(profile: &ProviderProfile, towns: &[Town]) -> Option<usize> {
    let anchor = &towns[*profile.towns.first()?];
    let candidates: Vec<usize> = (0..towns.len())
        .filter(|t| !profile.towns.contains(t))
        .collect();
    let same_state: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&t| towns[t].state == anchor.state)
        .collect();
    let pool = if same_state.is_empty() {
        candidates
    } else {
        same_state
    };
    pool.into_iter().min_by(|&a, &b| {
        anchor
            .center
            .haversine_km(&towns[a].center)
            .partial_cmp(&anchor.center.haversine_km(&towns[b].center))
            .unwrap()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric_gen::{generate_fabric, generate_towns};

    fn world() -> (SynthConfig, Vec<Town>, bdc::Fabric, Vec<ProviderProfile>) {
        let config = SynthConfig::tiny(13);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 1);
        let providers = generate_providers(&config, &towns, 1);
        (config, towns, fabric, providers)
    }

    #[test]
    fn provider_counts_match_config() {
        let (config, _, _, providers) = world();
        assert_eq!(providers.len(), config.n_providers);
        let majors = providers.iter().filter(|p| p.provider.major).count();
        assert_eq!(majors, config.n_major_providers);
    }

    #[test]
    fn exactly_one_jcc_provider_when_enabled() {
        let (_, _, _, providers) = world();
        let jcc: Vec<_> = providers.iter().filter(|p| p.jcc_like).collect();
        assert_eq!(jcc.len(), 1);
        assert_eq!(jcc[0].style, ReportingStyle::IntentionalOverclaim);
        assert!(!jcc[0].provider.major);
    }

    #[test]
    fn no_jcc_provider_when_disabled() {
        let mut config = SynthConfig::tiny(13);
        config.include_jcc = false;
        let towns = generate_towns(&config, 1);
        let providers = generate_providers(&config, &towns, 1);
        assert!(providers.iter().all(|p| !p.jcc_like));
    }

    #[test]
    fn provider_population_is_worker_count_invariant() {
        let (config, towns, _, base) = world();
        for workers in [2, 5] {
            let got = generate_providers(&config, &towns, workers);
            assert_eq!(got.len(), base.len());
            for (a, b) in base.iter().zip(&got) {
                assert_eq!(a.provider.id, b.provider.id);
                assert_eq!(a.provider.name, b.provider.name);
                assert_eq!(a.towns, b.towns);
                assert_eq!(a.style, b.style);
            }
        }
    }

    #[test]
    fn parallel_claims_match_per_provider_claims() {
        let (config, towns, fabric, providers) = world();
        let all = compute_all_claims(&providers, &towns, &fabric, &config, 3);
        assert_eq!(all.len(), providers.len());
        let sample = &providers[providers.len() / 2];
        let direct = compute_claims(sample, &towns, &fabric, &config);
        let fanned = &all[&sample.provider.id];
        assert_eq!(direct.len(), fanned.len());
        for (a, b) in direct.iter().zip(fanned) {
            assert_eq!((a.location, a.technology), (b.location, b.technology));
            assert_eq!(a.truly_served, b.truly_served);
        }
    }

    #[test]
    fn provider_ids_unique() {
        let (_, _, _, providers) = world();
        let mut ids: Vec<u32> = providers.iter().map(|p| p.provider.id.value()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn claims_include_overclaims_for_aggressive_styles() {
        let (config, towns, fabric, providers) = world();
        // Find a provider with a non-accurate style and some claims.
        let mut saw_false_claim = false;
        let mut saw_true_claim = false;
        for profile in &providers {
            let claims = compute_claims(profile, &towns, &fabric, &config);
            for c in &claims {
                if c.truly_served {
                    saw_true_claim = true;
                } else {
                    saw_false_claim = true;
                }
            }
        }
        assert!(saw_true_claim, "no truthful claims generated");
        assert!(saw_false_claim, "no over-claims generated");
    }

    #[test]
    fn accurate_providers_never_overclaim_much() {
        let (config, towns, fabric, providers) = world();
        for profile in providers
            .iter()
            .filter(|p| p.style == ReportingStyle::Accurate)
        {
            let claims = compute_claims(profile, &towns, &fabric, &config);
            if claims.is_empty() {
                continue;
            }
            let false_rate =
                claims.iter().filter(|c| !c.truly_served).count() as f64 / claims.len() as f64;
            assert!(
                false_rate < 0.35,
                "accurate provider false rate {false_rate}"
            );
        }
    }

    #[test]
    fn jcc_provider_has_substantial_false_claims() {
        let (config, towns, fabric, providers) = world();
        let jcc = providers.iter().find(|p| p.jcc_like).unwrap();
        let claims = compute_claims(jcc, &towns, &fabric, &config);
        assert!(!claims.is_empty());
        let false_count = claims.iter().filter(|c| !c.truly_served).count();
        assert!(
            false_count >= 20,
            "JCC provider generated too few false claims ({false_count} of {})",
            claims.len()
        );
    }

    #[test]
    fn majors_span_multiple_states() {
        let (_, towns, _, providers) = world();
        for p in providers.iter().filter(|p| p.provider.major) {
            let states: std::collections::HashSet<&str> =
                p.towns.iter().map(|&t| towns[t].state.as_str()).collect();
            assert!(
                states.len() >= 3,
                "major {} spans {} states",
                p.provider.name,
                states.len()
            );
        }
    }
}
