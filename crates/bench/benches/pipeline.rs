//! Criterion benches of the pipeline stages themselves: world generation,
//! provider→ASN matching + speed-test attribution, label construction,
//! feature engineering, model training and prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use redsus_bench::{bench_config, micro_config};
use redsus_core::features::{build_features, FeatureConfig};
use redsus_core::labels::LabelingOptions;
use redsus_core::model::{default_params, run_holdout, HoldoutStrategy};
use redsus_core::pipeline::{AnalysisContext, PipelineEngine};
use std::hint::black_box;
use synth::SynthUs;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    // World generation at micro scale (measured end to end).
    group.bench_function("generate_world_micro", |b| {
        b.iter(|| black_box(SynthUs::generate(&micro_config(7))))
    });

    // The remaining stages run over a shared, larger world. `prepare_context`
    // is the default (parallel) engine; the `_sequential` variant pins the
    // single-threaded baseline so the committed BENCH_baseline.json records
    // the parallel-vs-sequential speedup.
    let world = SynthUs::generate(&bench_config(5));
    group.bench_function("prepare_context", |b| {
        b.iter(|| black_box(AnalysisContext::prepare(&world)))
    });
    group.bench_function("prepare_context_sequential", |b| {
        b.iter(|| black_box(PipelineEngine::sequential().run(&world).context))
    });

    let ctx = AnalysisContext::prepare(&world);
    group.bench_function("build_labels", |b| {
        b.iter(|| black_box(ctx.build_labels(&world, &LabelingOptions::default())))
    });

    let labels = ctx.build_labels(&world, &LabelingOptions::default());
    group.bench_function("build_features", |b| {
        b.iter(|| {
            black_box(build_features(
                &world,
                &ctx,
                &labels,
                &FeatureConfig::default(),
            ))
        })
    });

    let matrix = build_features(&world, &ctx, &labels, &FeatureConfig::default());
    group.bench_function("train_state_holdout", |b| {
        b.iter(|| {
            black_box(run_holdout(
                &matrix,
                &HoldoutStrategy::States(vec!["NE".into(), "GA".into()]),
                default_params(1),
            ))
        })
    });

    let outcome = run_holdout(
        &matrix,
        &HoldoutStrategy::RandomObservations { fraction: 0.1 },
        default_params(1),
    );
    group.bench_function("predict_10k_rows", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..matrix.dataset.n_rows().min(10_000) {
                acc += outcome.model.predict_proba(matrix.dataset.row(i));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
