//! Hermetic observability smoke: train a tiny model, serve it on loopback,
//! drive a burst of keep-alive `/score` traffic, then scrape `GET /metrics`
//! (Prometheus text) and `GET /stats` (JSON) and print both — proof that
//! the whole telemetry path works over real HTTP with no external setup.
//!
//! ```sh
//! cargo run --release --example serve_metrics_smoke -- [--requests N] [--out metrics.prom]
//! ```
//!
//! `--out FILE` additionally writes the Prometheus scrape to FILE (CI
//! uploads it as an artifact).

use std::io::{Read, Write};
use std::net::TcpStream;

use red_is_sus::ml::{Dataset, GbdtModel, GbdtParams};
use red_is_sus::serve::{ScoreServer, ServeConfig, ServedModel};

fn main() {
    let mut requests = 25usize;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(25),
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: serve_metrics_smoke [--requests N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    // A tiny deterministic model over two features.
    let mut d = Dataset::new(vec!["down_mbps".into(), "loss_pct".into()]);
    for i in 0..200 {
        let x = i as f32 / 200.0;
        d.push_row(
            &[x * 900.0, (1.0 - x) * 5.0],
            if x > 0.6 { 0.0 } else { 1.0 },
        );
    }
    let served = ServedModel::from_model(GbdtModel::fit(
        &d,
        GbdtParams {
            n_estimators: 8,
            max_depth: 3,
            ..GbdtParams::default()
        },
    ));
    println!(
        "model {} trained, starting server",
        served.fingerprint_hex()
    );

    let server = ScoreServer::start(served, ServeConfig::default()).expect("bind loopback");

    // One keep-alive connection carrying the whole burst.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let csv = "down_mbps,loss_pct\n850.0,0.1\n12.0,4.2\n300.0,1.0\n";
    for _ in 0..requests {
        stream
            .write_all(
                format!(
                    "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{csv}",
                    csv.len()
                )
                .as_bytes(),
            )
            .expect("write score request");
        read_one_response(&mut stream);
    }
    drop(stream);

    let scrape = get(&server, "/metrics");
    let stats = get(&server, "/stats");

    println!("\n--- GET /metrics ({} bytes) ---", scrape.len());
    for line in scrape.lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }
    println!("\n--- GET /stats ---\n{stats}");

    if let Some(path) = out {
        std::fs::write(&path, &scrape).expect("write scrape");
        println!("\nwrote {path}");
    }

    let final_stats = server.shutdown();
    assert_eq!(final_stats.requests as usize, requests + 2);
    assert_eq!(final_stats.scored_rows as usize, requests * 3);
    println!(
        "done: {} requests, {} rows scored",
        final_stats.requests, final_stats.scored_rows
    );
}

/// One GET over a throwaway connection.
fn get(server: &ScoreServer, target: &str) -> String {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response framing");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

/// Read one Content-Length-framed response off a keep-alive stream.
fn read_one_response(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length")
        .trim()
        .parse()
        .expect("numeric length");
    let total = header_end + 4 + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
}
