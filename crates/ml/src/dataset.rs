//! Dense datasets for supervised binary classification.
//!
//! Rows are stored row-major as `f32`; missing values are encoded as `NaN`
//! (the trees learn a default direction for them, like XGBoost's sparsity-aware
//! splits). Labels are 0.0 / 1.0.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A dense feature matrix with binary labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    /// Name → column index, precomputed at construction: serving resolves
    /// feature names per request, so the lookup must not scan all names.
    /// Derived from `feature_names`, so it is skipped on the wire and
    /// rebuilt by the constructor (the `NbmRelease::claim_index` pattern).
    #[serde(skip)]
    name_index: HashMap<String, usize>,
    n_features: usize,
    data: Vec<f32>,
    labels: Vec<f32>,
}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    ///
    /// # Panics
    /// Panics when no features are given.
    pub fn new(feature_names: Vec<String>) -> Self {
        assert!(!feature_names.is_empty(), "a dataset needs features");
        let n_features = feature_names.len();
        let name_index = crate::flat::build_name_index(&feature_names);
        Self {
            feature_names,
            name_index,
            n_features,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the row length does not match the feature count or the
    /// label is not 0 or 1.
    pub fn push_row(&mut self, row: &[f32], label: f32) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(label == 0.0 || label == 1.0, "labels must be 0 or 1");
        self.data.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Index of a feature by name — O(1) via the precomputed map (duplicate
    /// names resolve to the first occurrence, matching the old linear scan).
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// A row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// One cell.
    pub fn get(&self, row: usize, feature: usize) -> f32 {
        self.data[row * self.n_features + feature]
    }

    /// All labels.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Label of one row.
    pub fn label(&self, i: usize) -> f32 {
        self.labels[i]
    }

    /// Number of positive (label 1) rows.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1.0).count()
    }

    /// Number of negative (label 0) rows.
    pub fn negatives(&self) -> usize {
        self.n_rows() - self.positives()
    }

    /// Fraction of positive rows (0 when empty).
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.positives() as f64 / self.n_rows() as f64
        }
    }

    /// A new dataset containing only the given row indices (in order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        for &r in rows {
            out.push_row(self.row(r), self.labels[r]);
        }
        out
    }

    /// Mean of a feature over rows where it is present (ignores NaN).
    pub fn feature_mean(&self, feature: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in 0..self.n_rows() {
            let v = self.get(r, feature);
            if !v.is_nan() {
                sum += v as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push_row(&[1.0, 2.0], 0.0);
        d.push_row(&[3.0, f32::NAN], 1.0);
        d.push_row(&[5.0, 6.0], 1.0);
        d
    }

    #[test]
    fn shape_and_access() {
        let d = toy();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1)[0], 3.0);
        assert!(d.get(1, 1).is_nan());
        assert_eq!(d.label(2), 1.0);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("zzz"), None);
    }

    #[test]
    fn class_counts() {
        let d = toy();
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 1);
        assert!((d.positive_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0)[0], 5.0);
        assert_eq!(s.label(1), 0.0);
    }

    #[test]
    fn feature_mean_ignores_missing() {
        let d = toy();
        assert!((d.feature_mean(1) - 4.0).abs() < 1e-9);
        assert!((d.feature_mean(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push_row(&[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_label_panics() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push_row(&[1.0], 0.5);
    }

    #[test]
    fn feature_index_is_first_wins_for_duplicates() {
        // The precomputed map must preserve the old linear scan's semantics:
        // the first column with a given name wins.
        let d = Dataset::new(vec!["a".into(), "b".into(), "a".into()]);
        assert_eq!(d.feature_index("a"), Some(0));
        assert_eq!(d.feature_index("b"), Some(1));
    }

    #[test]
    fn empty_dataset_positive_rate_zero() {
        let d = Dataset::new(vec!["a".into()]);
        assert_eq!(d.positive_rate(), 0.0);
        assert!(d.is_empty());
    }
}
