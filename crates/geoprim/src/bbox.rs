//! Axis-aligned geographic bounding boxes.
//!
//! State and county extents in the synthetic United States are modelled as
//! lat/lng bounding boxes; the generator samples Broadband Serviceable
//! Locations inside them and the experiments slice observations by state.

use serde::{Deserialize, Serialize};

use crate::LatLng;

/// An axis-aligned box in latitude/longitude space.
///
/// Boxes never cross the antimeridian: `min_lng <= max_lng` always holds.
/// This is sufficient for the continental US, Alaska east of the antimeridian,
/// Hawaii and the Atlantic/Caribbean territories modelled by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    pub min_lat: f64,
    pub min_lng: f64,
    pub max_lat: f64,
    pub max_lng: f64,
}

impl BoundingBox {
    /// Create a bounding box from two corners (any order).
    pub fn new(lat_a: f64, lng_a: f64, lat_b: f64, lng_b: f64) -> Self {
        Self {
            min_lat: lat_a.min(lat_b),
            min_lng: lng_a.min(lng_b),
            max_lat: lat_a.max(lat_b),
            max_lng: lng_a.max(lng_b),
        }
    }

    /// The degenerate box containing exactly one point.
    pub fn from_point(p: LatLng) -> Self {
        Self::new(p.lat, p.lng, p.lat, p.lng)
    }

    /// Smallest box containing every point in `points`. Returns `None` for an
    /// empty slice.
    pub fn from_points(points: &[LatLng]) -> Option<Self> {
        let first = points.first()?;
        let mut bbox = Self::from_point(*first);
        for p in &points[1..] {
            bbox.extend(*p);
        }
        Some(bbox)
    }

    /// Grow the box so it contains `p`.
    pub fn extend(&mut self, p: LatLng) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lng = self.min_lng.min(p.lng);
        self.max_lng = self.max_lng.max(p.lng);
    }

    /// True when `p` lies inside or on the boundary of the box.
    pub fn contains(&self, p: &LatLng) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lng >= self.min_lng
            && p.lng <= self.max_lng
    }

    /// True when the two boxes share any point.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lng <= other.max_lng
            && self.max_lng >= other.min_lng
    }

    /// Centre of the box.
    pub fn center(&self) -> LatLng {
        LatLng::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lng + self.max_lng) / 2.0,
        )
    }

    /// Extent in degrees (`lat_span`, `lng_span`).
    pub fn span_deg(&self) -> (f64, f64) {
        (self.max_lat - self.min_lat, self.max_lng - self.min_lng)
    }

    /// Expand the box by `margin_deg` degrees on every side (clamped/normalised
    /// by the [`LatLng`] constructor when later used as coordinates).
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min_lat: self.min_lat - margin_deg,
            min_lng: self.min_lng - margin_deg,
            max_lat: self.max_lat + margin_deg,
            max_lng: self.max_lng + margin_deg,
        }
    }

    /// Approximate area in square kilometres, treating the box as a band on a
    /// sphere (exact in latitude, exact in longitude fraction).
    pub fn area_km2(&self) -> f64 {
        let r_km = crate::EARTH_RADIUS_M / 1000.0;
        let lat1 = self.min_lat.to_radians();
        let lat2 = self.max_lat.to_radians();
        let dlng = (self.max_lng - self.min_lng).to_radians();
        (r_km * r_km * dlng * (lat2.sin() - lat1.sin())).abs()
    }

    /// Interpolate a point inside the box: `u`, `v` in `[0,1]` map linearly to
    /// longitude and latitude respectively. Used by the synthetic generator to
    /// turn uniform random numbers into coordinates without owning an RNG here.
    pub fn lerp(&self, u: f64, v: f64) -> LatLng {
        LatLng::new(
            self.min_lat + v.clamp(0.0, 1.0) * (self.max_lat - self.min_lat),
            self.min_lng + u.clamp(0.0, 1.0) * (self.max_lng - self.min_lng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vabox() -> BoundingBox {
        // Roughly Virginia.
        BoundingBox::new(36.5, -83.7, 39.5, -75.2)
    }

    #[test]
    fn contains_interior_point() {
        assert!(vabox().contains(&LatLng::new(37.2, -80.4)));
    }

    #[test]
    fn excludes_exterior_point() {
        assert!(!vabox().contains(&LatLng::new(41.0, -80.4)));
    }

    #[test]
    fn corners_any_order() {
        let a = BoundingBox::new(39.5, -75.2, 36.5, -83.7);
        assert_eq!(a, vabox());
    }

    #[test]
    fn extend_grows_box() {
        let mut b = BoundingBox::from_point(LatLng::new(10.0, 10.0));
        b.extend(LatLng::new(12.0, 8.0));
        assert!(b.contains(&LatLng::new(11.0, 9.0)));
    }

    #[test]
    fn from_points_matches_manual_extend() {
        let pts = vec![
            LatLng::new(10.0, 10.0),
            LatLng::new(12.0, 8.0),
            LatLng::new(11.0, 14.0),
        ];
        let b = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(b.min_lat, 10.0);
        assert_eq!(b.max_lat, 12.0);
        assert_eq!(b.min_lng, 8.0);
        assert_eq!(b.max_lng, 14.0);
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn intersection_detection() {
        let a = vabox();
        let b = BoundingBox::new(38.0, -78.0, 40.0, -70.0);
        let c = BoundingBox::new(45.0, -78.0, 47.0, -70.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn center_is_inside() {
        let b = vabox();
        assert!(b.contains(&b.center()));
    }

    #[test]
    fn lerp_corners() {
        let b = vabox();
        let sw = b.lerp(0.0, 0.0);
        let ne = b.lerp(1.0, 1.0);
        assert!((sw.lat - 36.5).abs() < 1e-9 && (sw.lng - (-83.7)).abs() < 1e-9);
        assert!((ne.lat - 39.5).abs() < 1e-9 && (ne.lng - (-75.2)).abs() < 1e-9);
    }

    #[test]
    fn area_positive_and_plausible() {
        // Virginia is ~110,000 km^2; our box is generous so expect bigger, but
        // in the right order of magnitude.
        let a = vabox().area_km2();
        assert!(a > 100_000.0 && a < 400_000.0, "area {a}");
    }
}
