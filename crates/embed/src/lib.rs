//! Deterministic sentence embeddings — the S-BERT substitute.
//!
//! The paper embeds each provider's free-text BDC filing methodology with a
//! pre-trained S-BERT model, producing a 384-dimensional vector that is
//! appended to every observation (§5.1). Shipping a transformer is neither
//! possible offline nor necessary: the model only needs a fixed-width dense
//! representation in which *near-identical methodology statements land close
//! together* — the signal the paper exploits is that many small ISPs file
//! word-for-word identical consultant-written methodologies, and that some
//! methodologies describe disallowed practices (e.g. reporting whole census
//! blocks).
//!
//! This crate provides that representation with classical, fully
//! deterministic machinery:
//!
//! 1. tokenise the text into lowercase word unigrams, word bigrams and
//!    character trigrams,
//! 2. hash each token into a large sparse feature space (feature hashing with
//!    a seeded 64-bit mixer),
//! 3. project the sparse vector into `DIM` dimensions with a signed random
//!    projection whose signs are derived from the same hash (a
//!    Johnson–Lindenstrauss style sketch),
//! 4. L2-normalise.
//!
//! Cosine similarity of the resulting vectors approximates token-level
//! similarity of the inputs: identical texts embed identically, texts sharing
//! most of their phrasing have high cosine similarity, and unrelated texts are
//! near-orthogonal in expectation.

pub mod similarity;
pub mod tokenize;

pub use similarity::{cosine_similarity, euclidean_distance};
pub use tokenize::{char_trigrams, word_bigrams, word_unigrams, Tokenizer};

use serde::{Deserialize, Serialize};

/// Dimensionality matching the `all-MiniLM-L6-v2` S-BERT model the paper uses.
pub const SBERT_DIM: usize = 384;

/// A deterministic text embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextEmbedder {
    dim: usize,
    seed: u64,
}

impl Default for TextEmbedder {
    fn default() -> Self {
        Self::new(SBERT_DIM, 0x5EED_5BEE)
    }
}

impl TextEmbedder {
    /// Create an embedder with a given output dimensionality and seed.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self { dim, seed }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed a text into a dense, L2-normalised vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let tokenizer = Tokenizer::default();
        for (token, weight) in tokenizer.weighted_tokens(text) {
            let h = splitmix64(hash_str(&token) ^ self.seed);
            let idx = (h % self.dim as u64) as usize;
            // The next bit of the hash decides the sign, giving a signed
            // random projection.
            let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
            v[idx] += sign * weight;
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed many texts.
    pub fn embed_batch<'a, I>(&self, texts: I) -> Vec<Vec<f32>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }
}

/// FNV-1a hash of a string (stable across platforms and runs).
fn hash_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The splitmix64 finaliser, used to decorrelate hash bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Normalise a vector to unit L2 norm (leaves the zero vector untouched).
fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METHODOLOGY_A: &str = "We determined served locations using engineering records of our \
        fiber routes and drop lengths, validated against subscriber addresses.";
    const METHODOLOGY_B: &str = "We determined served locations using engineering records of our \
        fiber routes and drop lengths, validated against customer addresses.";
    const METHODOLOGY_C: &str = "Coverage was reported for all census blocks in which the company \
        offers or advertises service, consistent with prior Form 477 filings.";

    #[test]
    fn identical_text_embeds_identically() {
        let e = TextEmbedder::default();
        assert_eq!(e.embed(METHODOLOGY_A), e.embed(METHODOLOGY_A));
    }

    #[test]
    fn embedding_is_unit_norm() {
        let e = TextEmbedder::default();
        let v = e.embed(METHODOLOGY_A);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(v.len(), SBERT_DIM);
    }

    #[test]
    fn near_duplicates_are_closer_than_unrelated_texts() {
        let e = TextEmbedder::default();
        let a = e.embed(METHODOLOGY_A);
        let b = e.embed(METHODOLOGY_B);
        let c = e.embed(METHODOLOGY_C);
        let sim_ab = cosine_similarity(&a, &b);
        let sim_ac = cosine_similarity(&a, &c);
        assert!(sim_ab > 0.8, "near-duplicate similarity {sim_ab}");
        assert!(sim_ab > sim_ac + 0.2, "ab={sim_ab} ac={sim_ac}");
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let e = TextEmbedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let a = TextEmbedder::new(64, 1).embed(METHODOLOGY_A);
        let b = TextEmbedder::new(64, 2).embed(METHODOLOGY_A);
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_single() {
        let e = TextEmbedder::default();
        let batch = e.embed_batch([METHODOLOGY_A, METHODOLOGY_C]);
        assert_eq!(batch[0], e.embed(METHODOLOGY_A));
        assert_eq!(batch[1], e.embed(METHODOLOGY_C));
    }

    #[test]
    fn dimension_is_configurable() {
        let e = TextEmbedder::new(32, 7);
        assert_eq!(e.embed(METHODOLOGY_A).len(), 32);
        assert_eq!(e.dim(), 32);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = TextEmbedder::new(0, 7);
    }
}

#[cfg(test)]
mod proptests {
    //! Property-style tests over seeded random inputs (the environment has no
    //! registry access for the real `proptest`; the invariants are unchanged).

    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random text of up to `max_len` chars drawn from a mixed alphabet of
    //  words, punctuation, digits and unicode.
    fn random_text(rng: &mut StdRng, max_len: usize) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'c', 'e', 'o', 'r', 's', 't', 'z', 'A', 'Z', '0', '9', ' ', ' ', ' ', '.',
            ',', '-', '_', '/', 'é', 'ß', '中',
        ];
        let len = rng.gen_range(0..=max_len);
        (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect()
    }

    /// Every embedding has norm 0 (empty token set) or 1.
    #[test]
    fn norm_is_zero_or_one() {
        let mut rng = StdRng::seed_from_u64(0x51);
        let e = TextEmbedder::new(64, 42);
        for _ in 0..300 {
            let text = random_text(&mut rng, 200);
            let v = e.embed(&text);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(
                norm < 1e-6 || (norm - 1.0).abs() < 1e-4,
                "norm {norm} for {text:?}"
            );
        }
    }

    /// Embedding is deterministic regardless of input.
    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(0x52);
        let e = TextEmbedder::new(64, 42);
        for _ in 0..300 {
            let text = random_text(&mut rng, 200);
            assert_eq!(e.embed(&text), e.embed(&text));
        }
    }

    /// Cosine similarity of any two embeddings stays in [-1, 1].
    #[test]
    fn cosine_bounded() {
        let mut rng = StdRng::seed_from_u64(0x53);
        let e = TextEmbedder::new(64, 42);
        for _ in 0..300 {
            let a = random_text(&mut rng, 100);
            let b = random_text(&mut rng, 100);
            let s = cosine_similarity(&e.embed(&a), &e.embed(&b));
            assert!((-1.0001..=1.0001).contains(&s), "cosine {s}");
        }
    }
}
