//! Generating the synthetic Broadband Serviceable Location Fabric.
//!
//! BSLs are clustered into "towns": each state gets a number of towns
//! proportional to its population weight, and BSLs scatter around each town
//! centre with a roughly Gaussian radial profile plus a thin rural tail. The
//! clustering constant is tuned so the median number of BSLs per occupied
//! resolution-8 hex lands near the paper's reported value of 4 (Figure 9).

use bdc::{Bsl, Fabric, LocationId};
use geoprim::LatLng;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::SynthConfig;
use crate::states::{total_population_weight, STATES};

/// A population cluster that providers build networks around.
#[derive(Debug, Clone)]
pub struct Town {
    /// Index of the state in [`STATES`].
    pub state_index: usize,
    /// Two-letter state code (denormalised for convenience).
    pub state: String,
    /// Town centre.
    pub center: LatLng,
    /// Number of BSLs generated around the town.
    pub n_bsls: usize,
}

/// Generate town centres for every state.
pub fn generate_towns(config: &SynthConfig, rng: &mut StdRng) -> Vec<Town> {
    let total_weight = total_population_weight();
    let mut towns = Vec::new();
    for (state_index, state) in STATES.iter().enumerate() {
        let state_bsls =
            ((config.n_bsls as f64) * state.population_weight / total_weight).round() as usize;
        if state_bsls == 0 {
            continue;
        }
        let n_towns = (state_bsls / config.bsls_per_town).max(1);
        let bbox = state.bounding_box();
        // Shrink the sampling box slightly so towns (and their scatter) stay
        // well inside the state's bounding box.
        for t in 0..n_towns {
            let u = rng.gen_range(0.1..0.9);
            let v = rng.gen_range(0.1..0.9);
            let center = bbox.lerp(u, v);
            let mut n = state_bsls / n_towns;
            if t == 0 {
                n += state_bsls % n_towns;
            }
            towns.push(Town {
                state_index,
                state: state.code.to_string(),
                center,
                n_bsls: n,
            });
        }
    }
    towns
}

/// Generate the fabric by scattering BSLs around every town.
pub fn generate_fabric(towns: &[Town], rng: &mut StdRng) -> Fabric {
    let mut bsls = Vec::new();
    let mut next_id: u64 = 1;
    for town in towns {
        for _ in 0..town.n_bsls {
            // Radial profile: most structures spread uniformly over a compact
            // town disc (giving a few BSLs per res-8 hex, as in Figure 9),
            // plus a thin rural tail.
            let town_radius_km = 3.8;
            let distance_km = if rng.gen_bool(0.92) {
                // Uniform areal density inside the town disc.
                town_radius_km * rng.gen_range(0.0..1.0f64).sqrt()
            } else {
                rng.gen_range(town_radius_km..10.0)
            };
            let bearing = rng.gen_range(0.0..360.0);
            let position = town.center.destination(bearing, distance_km * 1000.0);
            let unit_count = if rng.gen_bool(0.06) {
                rng.gen_range(2..40)
            } else {
                1
            };
            let community_anchor = rng.gen_bool(0.01);
            bsls.push(Bsl::new(
                LocationId(next_id),
                position,
                unit_count,
                community_anchor,
                town.state.clone(),
            ));
            next_id += 1;
        }
    }
    Fabric::new(bsls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_world() -> (Vec<Town>, Fabric) {
        let config = SynthConfig::tiny(7);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let towns = generate_towns(&config, &mut rng);
        let fabric = generate_fabric(&towns, &mut rng);
        (towns, fabric)
    }

    #[test]
    fn bsl_count_close_to_requested() {
        let config = SynthConfig::tiny(7);
        let (_, fabric) = small_world();
        let n = fabric.len() as f64;
        let target = config.n_bsls as f64;
        assert!(
            (n - target).abs() / target < 0.05,
            "generated {n} vs target {target}"
        );
    }

    #[test]
    fn every_state_with_weight_gets_towns() {
        let (towns, _) = small_world();
        let states_with_towns: std::collections::HashSet<&str> =
            towns.iter().map(|t| t.state.as_str()).collect();
        // At tiny scale small territories may round to zero BSLs, but the big
        // states must all be present.
        for code in ["CA", "TX", "NY", "VA", "NE"] {
            assert!(states_with_towns.contains(code), "missing {code}");
        }
    }

    #[test]
    fn bsls_stay_reasonably_near_their_town() {
        let (towns, fabric) = small_world();
        // Spot-check: every BSL is within 25 km of *some* town centre.
        for bsl in fabric.bsls().iter().step_by(97) {
            let nearest = towns
                .iter()
                .map(|t| t.center.haversine_km(&bsl.position))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 25.0,
                "BSL {} was {nearest} km from any town",
                bsl.id
            );
        }
    }

    #[test]
    fn median_bsls_per_hex_in_paper_range() {
        // The paper reports a median of 4 BSLs per occupied res-8 hex; the
        // generator should land in the same ballpark.
        let config = SynthConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let towns = generate_towns(&config, &mut rng);
        let fabric = generate_fabric(&towns, &mut rng);
        let median = fabric.median_bsls_per_hex();
        assert!(
            (2..=9).contains(&median),
            "median BSLs per hex was {median}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = SynthConfig::tiny(3);
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let towns = generate_towns(&config, &mut rng);
            let fabric = generate_fabric(&towns, &mut rng);
            fabric.bsls().iter().map(|b| b.hex).collect::<Vec<_>>()
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    #[test]
    fn location_ids_are_unique_and_positive() {
        let (_, fabric) = small_world();
        let mut ids: Vec<u64> = fabric.bsls().iter().map(|b| b.id.value()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert!(ids[0] >= 1);
    }
}
