//! Feature engineering (§5.1, Table 4).
//!
//! Each observation `(provider, hex, technology)` is vectorised into:
//! maximum advertised download/upload speed, a low-latency flag, a one-hot
//! state encoding, the hex centroid, the percentage of the hex's BSLs the
//! provider claims, an embedding of the provider's filing methodology, the
//! Ookla unique-device-per-location ratio and the MLab test count attributed
//! to the provider in the hex. Speed-test *results* are deliberately excluded
//! — only their presence is used.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use bdc::stream::map_shards;
use bdc::{FabricView, NbmRelease, ProviderId};
use embed::TextEmbedder;
use hexgrid::HexCell;
use ml::Dataset;
use serde::{Deserialize, Serialize};
use speedtest::{CoverageScore, OoklaHexAggregate, ProviderHexTests};
use synth::{SynthUs, STATES};

use crate::labels::Observation;
use crate::pipeline::AnalysisContext;

/// How feature engineering schedules its shard fan-out — the workspace's one
/// scheduling enum (`GenMode`/`DiffMode`/`ScoreMode`/`LabelMode`), under the
/// same contract: the worker count never changes the produced matrix by a
/// single bit.
pub use bdc::stream::DiffMode as FeatureMode;

/// Fixed number of observations per feature-row shard. A function of the
/// input alone (never of the worker count), so every schedule cuts the same
/// chunks and reassembling them in chunk order reproduces the sequential
/// row order exactly.
pub(crate) const OBSERVATION_CHUNK: usize = 1024;

/// Which feature groups to include and how large the methodology embedding is
/// — the axes of the feature ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Dimensionality of the methodology embedding (the paper uses 384-d
    /// S-BERT vectors; 32 keeps the default experiments fast with the same
    /// qualitative behaviour).
    pub embedding_dim: usize,
    /// Include the methodology embedding at all.
    pub include_methodology: bool,
    /// Include Ookla device density and MLab test counts.
    pub include_speedtest: bool,
    /// Include the hex centroid coordinates.
    pub include_location: bool,
    /// Include the one-hot state encoding.
    pub include_state: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            embedding_dim: 32,
            include_methodology: true,
            include_speedtest: true,
            include_location: true,
            include_state: true,
        }
    }
}

impl FeatureConfig {
    /// The paper's full-width configuration with 384-dimensional embeddings.
    pub fn paper_width() -> Self {
        Self {
            embedding_dim: embed::SBERT_DIM,
            ..Self::default()
        }
    }

    /// Whether methodology embedding columns are actually emitted.
    ///
    /// A zero-dimensional embedding registers no columns, so
    /// `include_methodology` with `embedding_dim: 0` behaves exactly like
    /// methodology disabled. (It used to register zero columns but still
    /// extend every row with one embedder output, tripping the dataset's
    /// row-width assert.)
    pub fn methodology_enabled(&self) -> bool {
        self.include_methodology && self.embedding_dim > 0
    }
}

/// A vectorised dataset together with the observations each row came from.
#[derive(Debug)]
pub struct FeatureMatrix {
    /// The dense feature matrix and labels.
    pub dataset: Dataset,
    /// Row-aligned observation metadata (provider, state, technology, source).
    pub observations: Vec<Observation>,
}

impl FeatureMatrix {
    /// The state of each row, for group holdouts.
    pub fn states(&self) -> Vec<String> {
        self.observations.iter().map(|o| o.state.clone()).collect()
    }

    /// Row indices whose observation satisfies a predicate.
    pub fn rows_where<F: Fn(&Observation) -> bool>(&self, predicate: F) -> Vec<usize> {
        self.observations
            .iter()
            .enumerate()
            .filter(|(_, o)| predicate(o))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The feature names a configuration emits, in their fixed column order.
pub fn feature_names(config: &FeatureConfig) -> Vec<String> {
    let mut names: Vec<String> = vec![
        "max_adv_download_mbps".into(),
        "max_adv_upload_mbps".into(),
        "low_latency".into(),
        "location_claim_pct".into(),
    ];
    if config.include_location {
        names.push("hex_centroid_lat".into());
        names.push("hex_centroid_lng".into());
    }
    if config.include_state {
        for s in STATES {
            names.push(format!("state_{}", s.code));
        }
    }
    if config.include_speedtest {
        names.push("ookla_devices_per_location".into());
        names.push("mlab_test_count".into());
    }
    if config.methodology_enabled() {
        for i in 0..config.embedding_dim {
            names.push(format!("methodology_emb_{i}"));
        }
    }
    names
}

/// Everything feature engineering needs to see — the counterpart of
/// `LabelInputs`. The fabric enters as a [`FabricView`] and the release, the
/// speed-test aggregates and the methodologies enter by reference, so both
/// the materialised `SynthUs` + `AnalysisContext` pair and the national-scale
/// streaming world vectorise bit-identically through the same code.
pub struct FeatureInputs<'a> {
    pub fabric: &'a dyn FabricView,
    /// The initial NBM release whose per-hex claims feed the claim columns.
    pub release: &'a NbmRelease,
    /// Per-hex Ookla aggregates (device density column).
    pub ookla_by_hex: &'a HashMap<HexCell, OoklaHexAggregate>,
    /// MLab tests attributed and localised per provider/hex.
    pub mlab_evidence: &'a ProviderHexTests,
    /// Per-provider filing methodology free text (embedding columns).
    pub methodologies: &'a BTreeMap<ProviderId, String>,
}

/// Vectorise one shard of observations into a dataset shard.
fn feature_shard(
    inputs: &FeatureInputs<'_>,
    observations: &[Observation],
    config: &FeatureConfig,
    names: &[String],
    embeddings: &BTreeMap<ProviderId, Vec<f32>>,
) -> Dataset {
    let release = inputs.release;
    let mut dataset = Dataset::new(names.to_vec());
    for obs in observations {
        let claim = release.claim_for(obs.provider, obs.hex, obs.technology);
        let mut row: Vec<f32> = Vec::with_capacity(dataset.n_features());
        match claim {
            Some(c) => {
                row.push(c.max_down_mbps as f32);
                row.push(c.max_up_mbps as f32);
                row.push(if c.low_latency { 1.0 } else { 0.0 });
                row.push(c.location_claim_pct() as f32);
            }
            None => {
                row.extend_from_slice(&[f32::NAN, f32::NAN, f32::NAN, f32::NAN]);
            }
        }
        if config.include_location {
            let center = obs.hex.center();
            row.push(center.lat as f32);
            row.push(center.lng as f32);
        }
        if config.include_state {
            for s in STATES {
                row.push(if obs.state == s.code { 1.0 } else { 0.0 });
            }
        }
        if config.include_speedtest {
            // The same devices-per-BSL definition the coverage scores (and
            // therefore the likely-served labelling threshold) use — see
            // `CoverageScore::density`.
            let devices_per_loc = inputs.ookla_by_hex.get(&obs.hex).map(|agg| {
                CoverageScore::density(agg.devices, inputs.fabric.bsl_count_in_hex(&obs.hex)) as f32
            });
            row.push(devices_per_loc.unwrap_or(f32::NAN));
            row.push(inputs.mlab_evidence.count(obs.provider, obs.hex) as f32);
        }
        if config.methodology_enabled() {
            match embeddings.get(&obs.provider) {
                Some(e) => row.extend(e.iter().copied()),
                None => row.extend(std::iter::repeat_n(f32::NAN, config.embedding_dim)),
            }
        }
        dataset.push_row(&row, obs.label.as_target());
    }
    dataset
}

/// Build the feature matrix for a set of labelled observations with the
/// default (parallel) schedule.
pub fn build_features(
    world: &SynthUs,
    ctx: &AnalysisContext,
    observations: &[Observation],
    config: &FeatureConfig,
) -> FeatureMatrix {
    build_features_with(world, ctx, observations, config, FeatureMode::Parallel)
}

/// Build the feature matrix under an explicit schedule.
///
/// Per-provider methodology embeddings are precomputed in parallel, then the
/// observations are cut into fixed [`OBSERVATION_CHUNK`]-sized shards, each
/// vectorised into a dataset shard on a scoped worker, and reassembled in
/// chunk order via [`Dataset::from_shards`] — bit-identical to a sequential
/// row loop for every [`FeatureMode`].
pub fn build_features_with(
    world: &SynthUs,
    ctx: &AnalysisContext,
    observations: &[Observation],
    config: &FeatureConfig,
    mode: FeatureMode,
) -> FeatureMatrix {
    let inputs = FeatureInputs {
        fabric: &world.fabric,
        release: world.initial_release(),
        ookla_by_hex: &ctx.ookla_by_hex,
        mlab_evidence: &ctx.mlab_evidence,
        methodologies: &ctx.methodologies,
    };
    build_features_from_inputs(&inputs, observations, config, mode)
}

/// Build the feature matrix from explicit [`FeatureInputs`] — the engine the
/// materialised wrapper above and the streaming national-scale path both
/// route through, so the two can never vectorise differently.
pub fn build_features_from_inputs(
    inputs: &FeatureInputs<'_>,
    observations: &[Observation],
    config: &FeatureConfig,
    mode: FeatureMode,
) -> FeatureMatrix {
    let workers = mode.worker_count();
    let names = feature_names(config);

    // Pre-compute methodology embeddings per provider, fanned across the
    // same workers (embedding is a pure function of the text).
    let embeddings: BTreeMap<ProviderId, Vec<f32>> = if config.methodology_enabled() {
        let embedder = TextEmbedder::new(config.embedding_dim, 0x5EED_5BEE);
        let entries: Vec<(&ProviderId, &String)> = inputs.methodologies.iter().collect();
        map_shards(workers, &entries, |_, (provider, text)| {
            (**provider, embedder.embed(text))
        })
        .into_iter()
        .collect()
    } else {
        BTreeMap::new()
    };

    let chunks: Vec<&[Observation]> = observations.chunks(OBSERVATION_CHUNK).collect();
    let shards = map_shards(workers, &chunks, |_, chunk| {
        feature_shard(inputs, chunk, config, &names, &embeddings)
    });
    FeatureMatrix {
        dataset: Dataset::from_shards(names, shards),
        observations: observations.to_vec(),
    }
}

/// An order-sensitive stable digest of a dataset: feature names, every cell's
/// bit pattern and every label fold through `synth::shard::StableHasher`.
/// Pins the worker-invariance contract of [`build_features_with`] and the
/// golden dataset fingerprint in `tests/end_to_end.rs`.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h = synth::shard::StableHasher::new();
    dataset.feature_names().hash(&mut h);
    dataset.n_rows().hash(&mut h);
    for r in 0..dataset.n_rows() {
        for v in dataset.row(r) {
            v.to_bits().hash(&mut h);
        }
        dataset.label(r).to_bits().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::LabelingOptions;
    use synth::SynthConfig;

    fn matrix() -> FeatureMatrix {
        let world = SynthUs::generate(&SynthConfig::tiny(5));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        build_features(&world, &ctx, &labels, &FeatureConfig::default())
    }

    #[test]
    fn matrix_shape_matches_observations() {
        let m = matrix();
        assert_eq!(m.dataset.n_rows(), m.observations.len());
        assert!(m.dataset.n_rows() > 100);
        // 4 claim features + 2 location + 55 states + 2 speedtest + 32 embedding.
        let expected = 4 + 2 + STATES.len() + 2 + 32;
        assert_eq!(m.dataset.n_features(), expected);
    }

    #[test]
    fn feature_names_include_paper_features() {
        let m = matrix();
        for name in [
            "max_adv_download_mbps",
            "ookla_devices_per_location",
            "mlab_test_count",
            "location_claim_pct",
            "state_NE",
            "methodology_emb_0",
        ] {
            assert!(
                m.dataset.feature_index(name).is_some(),
                "missing feature {name}"
            );
        }
    }

    #[test]
    fn state_onehot_is_exclusive() {
        let m = matrix();
        let state_cols: Vec<usize> = (0..m.dataset.n_features())
            .filter(|&i| m.dataset.feature_names()[i].starts_with("state_"))
            .collect();
        for r in (0..m.dataset.n_rows()).step_by(37) {
            let ones: f32 = state_cols.iter().map(|&c| m.dataset.get(r, c)).sum();
            assert_eq!(ones, 1.0, "row {r} has {ones} state bits set");
        }
    }

    #[test]
    fn config_flags_shrink_the_matrix() {
        let world = SynthUs::generate(&SynthConfig::tiny(5));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        let slim = build_features(
            &world,
            &ctx,
            &labels,
            &FeatureConfig {
                include_methodology: false,
                include_state: false,
                ..FeatureConfig::default()
            },
        );
        assert_eq!(slim.dataset.n_features(), 4 + 2 + 2);
    }

    #[test]
    fn zero_embedding_dim_behaves_as_methodology_disabled() {
        // Regression: `include_methodology: true` with `embedding_dim: 0`
        // used to register zero embedding columns but still extend every row
        // with an `embedding_dim.max(1)`-wide embedder output, tripping
        // `Dataset::push_row`'s row-width assert. Dim 0 now means "no
        // methodology features", across every ablation corner.
        let world = SynthUs::generate(&SynthConfig::tiny(5));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        for include_speedtest in [false, true] {
            for include_location in [false, true] {
                for include_state in [false, true] {
                    for include_methodology in [false, true] {
                        for embedding_dim in [0usize, 1, 32] {
                            let config = FeatureConfig {
                                embedding_dim,
                                include_methodology,
                                include_speedtest,
                                include_location,
                                include_state,
                            };
                            let m = build_features(&world, &ctx, &labels, &config);
                            let expected = 4
                                + if include_location { 2 } else { 0 }
                                + if include_state { STATES.len() } else { 0 }
                                + if include_speedtest { 2 } else { 0 }
                                + if config.methodology_enabled() {
                                    embedding_dim
                                } else {
                                    0
                                };
                            assert_eq!(
                                m.dataset.n_features(),
                                expected,
                                "width mismatch for {config:?}"
                            );
                            assert_eq!(m.dataset.n_rows(), labels.len());
                        }
                    }
                }
            }
        }
        // The degenerate corner matches disabled methodology bit for bit.
        let dim0 = build_features(
            &world,
            &ctx,
            &labels,
            &FeatureConfig {
                embedding_dim: 0,
                ..FeatureConfig::default()
            },
        );
        let disabled = build_features(
            &world,
            &ctx,
            &labels,
            &FeatureConfig {
                include_methodology: false,
                ..FeatureConfig::default()
            },
        );
        assert_eq!(
            dataset_fingerprint(&dim0.dataset),
            dataset_fingerprint(&disabled.dataset)
        );
    }

    #[test]
    fn worker_count_never_changes_the_matrix() {
        let world = SynthUs::generate(&SynthConfig::tiny(5));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        for config in [
            FeatureConfig::default(),
            FeatureConfig {
                include_methodology: false,
                include_state: false,
                ..FeatureConfig::default()
            },
        ] {
            let base = build_features_with(&world, &ctx, &labels, &config, FeatureMode::Sequential);
            for mode in [
                FeatureMode::Parallel,
                FeatureMode::Threads(3),
                FeatureMode::Threads(16),
            ] {
                let other = build_features_with(&world, &ctx, &labels, &config, mode);
                assert_eq!(
                    dataset_fingerprint(&other.dataset),
                    dataset_fingerprint(&base.dataset),
                    "feature engineering differs under {mode:?}"
                );
                assert_eq!(other.observations, base.observations);
            }
        }
    }

    #[test]
    fn ookla_density_feature_agrees_with_coverage_scores() {
        // The model feature and the likely-served labelling threshold must
        // see the same ratio on the same hex, bit for bit.
        let world = SynthUs::generate(&SynthConfig::tiny(5));
        let ctx = AnalysisContext::prepare(&world);
        let labels = ctx.build_labels(&world, &LabelingOptions::default());
        let m = build_features(&world, &ctx, &labels, &FeatureConfig::default());
        let col = m
            .dataset
            .feature_index("ookla_devices_per_location")
            .unwrap();
        let score_of_hex: std::collections::HashMap<_, f64> =
            ctx.coverage.iter().map(|s| (s.hex, s.score)).collect();
        let mut checked = 0usize;
        for (r, obs) in m.observations.iter().enumerate() {
            let feature = m.dataset.get(r, col);
            if let Some(score) = score_of_hex.get(&obs.hex) {
                assert_eq!(
                    feature.to_bits(),
                    (*score as f32).to_bits(),
                    "row {r} feature diverges from the coverage score"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no observation had a coverage-scored hex");
    }

    #[test]
    fn rows_where_filters_by_metadata() {
        let m = matrix();
        let unserved = m.rows_where(|o| o.label == crate::labels::Label::Unserved);
        let served = m.rows_where(|o| o.label == crate::labels::Label::Served);
        assert_eq!(unserved.len() + served.len(), m.dataset.n_rows());
        assert!(!unserved.is_empty() && !served.is_empty());
    }
}
