//! Criterion benches of sharded world generation: every config preset under
//! the sequential and parallel schedules, so the committed `BENCH_synth.json`
//! records the multicore speedup (or the documented single-core parity —
//! `Parallel` degrades to the sequential schedule on 1-core hosts).
//!
//! Regenerate the committed report with (from the workspace root; the path
//! must be absolute because cargo runs the bench binary with `crates/bench`
//! as its working directory):
//!
//! ```sh
//! BENCH_JSON=$PWD/BENCH_synth.json cargo bench -p redsus_bench --bench synthgen
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synth::{GenMode, SynthConfig, SynthUs};

fn gen(config: &SynthConfig, mode: GenMode) -> SynthUs {
    SynthUs::generate_with(config, mode)
        .expect("preset configs are valid")
        .0
}

fn bench_synthgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthgen");
    group.sample_size(10);
    let tiny = SynthConfig::tiny(5);
    group.bench_function("tiny_sequential", |b| {
        b.iter(|| black_box(gen(&tiny, GenMode::Sequential)))
    });
    group.bench_function("tiny_parallel", |b| {
        b.iter(|| black_box(gen(&tiny, GenMode::Parallel)))
    });
    group.bench_function("tiny_threads2", |b| {
        b.iter(|| black_box(gen(&tiny, GenMode::Threads(2))))
    });
    group.finish();

    // The larger presets run the full payload per iteration; keep samples low.
    let mut group = c.benchmark_group("synthgen_scale");
    group.sample_size(3);
    let experiment = SynthConfig::experiment(5);
    group.bench_function("experiment_sequential", |b| {
        b.iter(|| black_box(gen(&experiment, GenMode::Sequential)))
    });
    group.bench_function("experiment_parallel", |b| {
        b.iter(|| black_box(gen(&experiment, GenMode::Parallel)))
    });
    let large = SynthConfig::large(5);
    group.bench_function("large_sequential", |b| {
        b.iter(|| black_box(gen(&large, GenMode::Sequential)))
    });
    group.bench_function("large_parallel", |b| {
        b.iter(|| black_box(gen(&large, GenMode::Parallel)))
    });
    group.finish();
}

criterion_group!(benches, bench_synthgen);
criterion_main!(benches);
