//! Real-data ingest end to end: a BDC/Ookla data directory → the generic
//! streaming runner → a trained model → live `/score` requests over
//! loopback HTTP. Defaults to the committed sample fixture, so this runs
//! hermetically on a fresh checkout:
//!
//! ```sh
//! cargo run --release --example real_ingest -- \
//!     [--data-dir tests/fixtures/bdc_sample] [--json] [--out report.json]
//! ```
//!
//! `--json` replaces the human-readable report with one machine-readable
//! JSON document on stdout; `--out FILE` writes that document to FILE as
//! well (CI uploads it next to the bench artifacts).

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use red_is_sus::bdc::DiffMode;
use red_is_sus::core::features::FeatureConfig;
use red_is_sus::core::labels::LabelingOptions;
use red_is_sus::core::streaming::run_streaming_to_dataset;
use red_is_sus::ingest::{FileWorld, IngestOptions};
use red_is_sus::ml::{GbdtModel, GbdtParams};
use red_is_sus::serve::{ScoreServer, ServeConfig, ServedModel};

fn main() {
    let mut data_dir = PathBuf::from("tests/fixtures/bdc_sample");
    let mut json = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => {
                data_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--data-dir needs a value");
                    std::process::exit(2);
                }))
            }
            "--json" => json = true,
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: real_ingest [--data-dir DIR] [--json] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    // Ingest the directory, then run the source through the same generic
    // streaming pipeline the synth world uses.
    let world = FileWorld::load(&data_dir, &IngestOptions::default(), DiffMode::Parallel)
        .unwrap_or_else(|e| {
            eprintln!("ingest failed: {e}");
            std::process::exit(1);
        });
    if !json {
        let meta_detail = {
            use red_is_sus::bdc::WorldSource as _;
            world.meta().detail
        };
        println!("ingested {meta_detail}");
    }
    let run = run_streaming_to_dataset(
        world,
        &LabelingOptions::default(),
        &FeatureConfig::default(),
        DiffMode::Parallel,
    )
    .unwrap_or_else(|e| {
        eprintln!("streaming run failed: {e}");
        std::process::exit(1);
    });

    // Train a small forest on the ingested dataset and serve it.
    let model = GbdtModel::fit(
        &run.matrix.dataset,
        GbdtParams {
            n_estimators: 8,
            max_depth: 3,
            ..GbdtParams::default()
        },
    );
    let served = ServedModel::from_model(model);
    let fingerprint = served.fingerprint_hex();
    let server = ScoreServer::start(served, ServeConfig::default()).expect("bind loopback");

    // Score the first few ingested rows back through the HTTP endpoint.
    let score_rows = run.matrix.dataset.n_rows().min(5);
    let mut csv = run.matrix.dataset.feature_names().join(",");
    csv.push('\n');
    for i in 0..score_rows {
        let row = run.matrix.dataset.row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                csv.push(',');
            }
            // The frame parser treats `nan` as a missing cell.
            let _ = write!(csv, "{v}");
        }
        csv.push('\n');
    }
    let score_body = post_score(&server, &csv);
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1, "exactly one /score request was sent");
    assert_eq!(stats.scored_rows as usize, score_rows);

    if json || out.is_some() {
        let mut doc = format!(
            "{{\"data_dir\":\"{}\",\"stages\":[",
            data_dir.display().to_string().replace('\\', "/"),
        );
        for (i, stage) in run.report.stages.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let _ = write!(
                doc,
                "{{\"name\":\"{}\",\"wall_s\":{},\"shards\":{},\"peak_resident_entries\":{}}}",
                stage.name,
                stage.wall.as_secs_f64(),
                stage.shards,
                stage.peak_resident_entries,
            );
        }
        let _ = write!(
            doc,
            "],\"peak_resident_entries\":{},\"dataset\":{{\"rows\":{},\"features\":{}}},\
             \"model\":{{\"fingerprint\":\"{fingerprint}\"}},\
             \"score\":{{\"rows_scored\":{score_rows},\"response\":{score_body}}}}}",
            run.report.peak_resident_entries,
            run.matrix.dataset.n_rows(),
            run.matrix.dataset.n_features(),
        );
        if json {
            println!("{doc}");
        }
        if let Some(path) = out {
            std::fs::write(&path, &doc).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
    }
    if !json {
        println!(
            "{:<22} {:>12} {:>10} {:>16}",
            "stage", "wall ms", "shards", "peak entries"
        );
        for stage in &run.report.stages {
            println!(
                "{:<22} {:>12.1} {:>10} {:>16}",
                stage.name,
                stage.wall.as_secs_f64() * 1e3,
                stage.shards,
                stage.peak_resident_entries,
            );
        }
        println!(
            "\ndataset: {} observations x {} features",
            run.matrix.dataset.n_rows(),
            run.matrix.dataset.n_features(),
        );
        println!("model {fingerprint} served; scored {score_rows} rows over /score");
        println!("score response: {score_body}");
    }
}

/// One `POST /score` over a throwaway connection; returns the JSON body.
fn post_score(server: &ScoreServer, csv: &str) -> String {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(
            format!(
                "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{csv}",
                csv.len()
            )
            .as_bytes(),
        )
        .expect("write score request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response framing");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}
