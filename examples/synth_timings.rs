//! Print the sharded world generator's per-stage wall-clock and shard-count
//! report under the sequential, parallel and forced-thread schedules.
//!
//! ```sh
//! cargo run --release --example synth_timings [tiny|experiment|large] [seed]
//! ```

use red_is_sus::synth::{GenMode, SynthConfig, SynthStage, SynthUs};

fn main() {
    let preset = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let seed = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let config = match preset.as_str() {
        "experiment" => SynthConfig::experiment(seed),
        "large" => SynthConfig::large(seed),
        _ => SynthConfig::tiny(seed),
    };
    println!(
        "preset {preset} (seed {seed}): {} BSLs, {} providers\n",
        config.n_bsls, config.n_providers
    );

    let mut fingerprint = None;
    for mode in [GenMode::Sequential, GenMode::Parallel, GenMode::Threads(2)] {
        let (world, report) = SynthUs::generate_with(&config, mode).expect("valid preset");
        println!(
            "{mode:?} generation (executed: {:?}, {} worker{}):",
            report.executed,
            report.workers,
            if report.workers == 1 { "" } else { "s" },
        );
        for stage in SynthStage::ALL {
            println!(
                "  {:<18} {:>10.3} ms  ({} shard{})",
                stage.name(),
                report.wall_for(stage).unwrap().as_secs_f64() * 1e3,
                report.shards_for(stage).unwrap(),
                if report.shards_for(stage) == Some(1) {
                    ""
                } else {
                    "s"
                },
            );
        }
        println!(
            "  {:<18} {:>10.3} ms (stage sum {:.3} ms)",
            "total wall",
            report.total_wall.as_secs_f64() * 1e3,
            report.stage_sum().as_secs_f64() * 1e3,
        );
        let fp = world.canonical_fingerprint();
        println!("  fingerprint        {fp:#018x}\n");
        match fingerprint {
            None => fingerprint = Some(fp),
            Some(expected) => {
                assert_eq!(fp, expected, "schedules must generate bit-identical worlds")
            }
        }
    }
    println!("all schedules bit-identical ✓");
}
