//! Lock-free metric instruments and the registry that encodes them.
//!
//! Three instrument kinds, all recordable from any thread without taking a
//! lock on the hot path:
//!
//! * [`Counter`] — a monotone `AtomicU64`. `inc`/`add` are single relaxed
//!   RMW operations.
//! * [`Gauge`] — an `AtomicU64` holding `f64` bits. `set` is one store;
//!   `add` is a short CAS loop (gauges move rarely compared to counters).
//! * [`Histogram`] — fixed upper-bound buckets (`AtomicU64` each) plus a
//!   count and an `f64` sum, from which p50/p99 are derivable without
//!   storing individual observations.
//!
//! Every instrument handle is internally an `Option<Arc<…>>`: a **noop**
//! handle (`None`) makes recording a single branch, so instrumented code
//! paths cost nothing measurable when telemetry is disabled, and an
//! **active** handle is a clone of the registry-owned core, so recording
//! never goes through the registry again after creation.
//!
//! [`MetricsRegistry`] maps `(name, sorted label pairs)` to instrument
//! cores, get-or-create style, and renders two snapshot formats:
//! [`MetricsRegistry::encode_prometheus`] (the text exposition format, with
//! cumulative `_bucket`/`_sum`/`_count` histogram series) and
//! [`MetricsRegistry::snapshot_json`] (a strict-JSON snapshot with derived
//! p50/p99 per histogram). Existing active handles can also be **adopted**
//! into a registry, so a subsystem that keeps its own counters (server
//! stats, model-registry lifecycle events) exposes the *same atomics* on
//! the scrape endpoint instead of double-bookkeeping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Default latency buckets in seconds: 100µs … 10s, roughly log-spaced —
/// wide enough for a loopback `/healthz` and a 64-row `/score` alike.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 16] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Default stage wall-clock buckets in seconds: 500µs … 2h — a tiny test
/// world's stage and the national regulatory pass land in-range.
pub const DEFAULT_WALL_BUCKETS: [f64; 12] = [
    0.0005, 0.005, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0, 1800.0, 3600.0, 7200.0,
];

// ---------------------------------------------------------------------------
// Instrument cores and handles

#[derive(Debug, Default)]
struct CounterCore {
    value: AtomicU64,
}

/// A monotone counter handle. Cheap to clone; recording is one relaxed
/// `fetch_add` (or a single branch when the handle is a noop).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A handle that records nothing and reads zero.
    pub fn noop() -> Self {
        Self(None)
    }

    /// A live counter not (yet) attached to any registry — the form
    /// subsystems use for always-on bookkeeping that a registry may later
    /// [adopt](MetricsRegistry::adopt_counter).
    pub fn active() -> Self {
        Self(Some(Arc::new(CounterCore::default())))
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (zero for a noop handle).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map(|core| core.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[derive(Debug)]
struct GaugeCore {
    bits: AtomicU64,
}

impl Default for GaugeCore {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A gauge handle: an arbitrary `f64` that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// A handle that records nothing and reads zero.
    pub fn noop() -> Self {
        Self(None)
    }

    /// A live gauge not (yet) attached to any registry.
    pub fn active() -> Self {
        Self(Some(Arc::new(GaugeCore::default())))
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Set the gauge.
    pub fn set(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Move the gauge by `delta` (may be negative). A short CAS loop —
    /// gauges move orders of magnitude less often than counters.
    pub fn add(&self, delta: f64) {
        if let Some(core) = &self.0 {
            let _ = core
                .bits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                    Some((f64::from_bits(bits) + delta).to_bits())
                });
        }
    }

    /// Current value (zero for a noop handle).
    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map(|core| f64::from_bits(core.bits.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds, strictly increasing. The implicit final bucket
    /// is `+Inf`.
    bounds: Box<[f64]>,
    /// Per-bucket observation counts, `bounds.len() + 1` long (non
    /// cumulative; the encoder accumulates).
    buckets: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        // `le` semantics: a value lands in the first bucket whose upper
        // bound is >= it; NaN (never comparable) lands in +Inf.
        let idx = if value.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|b| *b < value)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Non-cumulative bucket snapshot (one read per bucket).
    fn bucket_snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Self(None)
    }

    /// A live histogram with the given finite, strictly increasing upper
    /// bounds, not (yet) attached to any registry.
    pub fn active(bounds: &[f64]) -> Self {
        Self(Some(Arc::new(HistogramCore::new(bounds))))
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Record a duration in seconds — the latency-histogram entry point.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|core| core.bucket_snapshot().iter().sum())
            .unwrap_or(0)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map(|core| core.sum()).unwrap_or(0.0)
    }

    /// Derive the `q`-quantile (`0.0..=1.0`) from the buckets by linear
    /// interpolation within the containing bucket — the same estimate
    /// `histogram_quantile` makes. `NaN` when empty or for a noop handle.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(core) = &self.0 else {
            return f64::NAN;
        };
        let buckets = core.bucket_snapshot();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            let next = cumulative + n;
            if rank <= next && *n > 0 {
                if i == core.bounds.len() {
                    // The +Inf bucket has no upper bound to interpolate to;
                    // the last finite bound is the honest best estimate.
                    return core.bounds.last().copied().unwrap_or(f64::NAN);
                }
                let lower = if i == 0 {
                    0.0_f64.min(core.bounds[0])
                } else {
                    core.bounds[i - 1]
                };
                let fraction = (rank - cumulative) as f64 / *n as f64;
                return lower + (core.bounds[i] - lower) * fraction;
            }
            cumulative = next;
        }
        core.bounds.last().copied().unwrap_or(f64::NAN)
    }
}

// ---------------------------------------------------------------------------
// The registry

/// The three Prometheus metric kinds the registry exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn prom(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

/// Sorted `(key, value)` label pairs — the series key within a family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Series>,
}

/// A process- or subsystem-scoped metric registry.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call with a
/// `(name, labels)` pair creates the series, later calls return a handle to
/// the same core — so hot paths create their handles once and record
/// lock-free thereafter. Asking for an existing name with a *different*
/// kind is a programming error and returns a noop handle (debug builds
/// assert), never a panic in a serving worker.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the series for `(name, labels)`, with `make` supplying
    /// the core on first creation. `None` on a kind conflict.
    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Option<Series> {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let key = label_set(labels);
        {
            let families = self.families.read().expect("metrics lock poisoned");
            if let Some(family) = families.get(name) {
                if family.kind != kind {
                    debug_assert!(false, "metric {name} registered as {:?}", family.kind);
                    return None;
                }
                if let Some(series) = family.series.get(&key) {
                    return Some(series.clone());
                }
            }
        }
        let mut families = self.families.write().expect("metrics lock poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            debug_assert!(false, "metric {name} registered as {:?}", family.kind);
            return None;
        }
        Some(family.series.entry(key).or_insert_with(make).clone())
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Arc::new(CounterCore::default()))
        }) {
            Some(Series::Counter(core)) => Counter(Some(core)),
            _ => Counter::noop(),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Arc::new(GaugeCore::default()))
        }) {
            Some(Series::Gauge(core)) => Gauge(Some(core)),
            _ => Gauge::noop(),
        }
    }

    /// Get or create a histogram series. `bounds` only applies on first
    /// creation; later calls return the existing series whatever bounds
    /// they pass.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Arc::new(HistogramCore::new(bounds)))
        }) {
            Some(Series::Histogram(core)) => Histogram(Some(core)),
            _ => Histogram::noop(),
        }
    }

    /// Expose an existing active counter as a registry series — the
    /// one-source-of-truth path for subsystems that keep their own
    /// always-on counters. The registry series *is* the caller's atomic;
    /// incrementing either view moves both. Returns `false` for a noop
    /// handle or a kind conflict.
    pub fn adopt_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) -> bool {
        let Some(core) = &counter.0 else { return false };
        self.adopt(
            name,
            help,
            MetricKind::Counter,
            labels,
            Series::Counter(Arc::clone(core)),
        )
    }

    /// Expose an existing active gauge as a registry series (see
    /// [`MetricsRegistry::adopt_counter`]).
    pub fn adopt_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: &Gauge,
    ) -> bool {
        let Some(core) = &gauge.0 else { return false };
        self.adopt(
            name,
            help,
            MetricKind::Gauge,
            labels,
            Series::Gauge(Arc::clone(core)),
        )
    }

    fn adopt(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        series: Series,
    ) -> bool {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut families = self.families.write().expect("metrics lock poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            debug_assert!(false, "metric {name} registered as {:?}", family.kind);
            return false;
        }
        family.series.insert(label_set(labels), series);
        true
    }

    /// Number of registered series across all families.
    pub fn series_count(&self) -> usize {
        self.families
            .read()
            .expect("metrics lock poisoned")
            .values()
            .map(|f| f.series.len())
            .sum()
    }

    /// Render the Prometheus text exposition format (version 0.0.4):
    /// `# HELP`/`# TYPE` per family, one line per series, histograms as
    /// cumulative `_bucket{le=…}` series plus `_sum` and `_count`.
    ///
    /// Bucket lines and `_count` are computed from one bucket snapshot, so
    /// cumulativity and `le="+Inf" == _count` hold within every scrape even
    /// under concurrent recording.
    pub fn encode_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let families = self.families.read().expect("metrics lock poisoned");
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.prom());
            out.push('\n');
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(core) => {
                        push_series_line(
                            &mut out,
                            name,
                            labels,
                            None,
                            &core.value.load(Ordering::Relaxed).to_string(),
                        );
                    }
                    Series::Gauge(core) => {
                        push_series_line(
                            &mut out,
                            name,
                            labels,
                            None,
                            &fmt_value(f64::from_bits(core.bits.load(Ordering::Relaxed))),
                        );
                    }
                    Series::Histogram(core) => {
                        let snapshot = core.bucket_snapshot();
                        let mut cumulative = 0u64;
                        let bucket_name = format!("{name}_bucket");
                        for (i, n) in snapshot.iter().enumerate() {
                            cumulative += n;
                            let le = match core.bounds.get(i) {
                                Some(b) => fmt_value(*b),
                                None => "+Inf".to_string(),
                            };
                            push_series_line(
                                &mut out,
                                &bucket_name,
                                labels,
                                Some(("le", &le)),
                                &cumulative.to_string(),
                            );
                        }
                        push_series_line(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            None,
                            &fmt_value(core.sum()),
                        );
                        push_series_line(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            None,
                            &cumulative.to_string(),
                        );
                    }
                }
            }
        }
        out
    }

    /// Render a strict-JSON snapshot of every family: counters and gauges
    /// with their value, histograms with count, sum, derived p50/p99 and
    /// the cumulative bucket table. Non-finite floats serialize as `null`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        let families = self.families.read().expect("metrics lock poisoned");
        for (fi, (name, family)) in families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&escape_json(name));
            out.push_str("\",\"kind\":\"");
            out.push_str(family.kind.prom());
            out.push_str("\",\"help\":\"");
            out.push_str(&escape_json(&family.help));
            out.push_str("\",\"series\":[");
            for (si, (labels, series)) in family.series.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":\"");
                    out.push_str(&escape_json(v));
                    out.push('"');
                }
                out.push('}');
                match series {
                    Series::Counter(core) => {
                        out.push_str(",\"value\":");
                        out.push_str(&core.value.load(Ordering::Relaxed).to_string());
                    }
                    Series::Gauge(core) => {
                        out.push_str(",\"value\":");
                        push_json_number(
                            &mut out,
                            f64::from_bits(core.bits.load(Ordering::Relaxed)),
                        );
                    }
                    Series::Histogram(core) => {
                        let handle = Histogram(Some(Arc::clone(core)));
                        let snapshot = core.bucket_snapshot();
                        let total: u64 = snapshot.iter().sum();
                        out.push_str(",\"count\":");
                        out.push_str(&total.to_string());
                        out.push_str(",\"sum\":");
                        push_json_number(&mut out, core.sum());
                        out.push_str(",\"p50\":");
                        push_json_number(&mut out, handle.quantile(0.50));
                        out.push_str(",\"p99\":");
                        push_json_number(&mut out, handle.quantile(0.99));
                        out.push_str(",\"buckets\":[");
                        let mut cumulative = 0u64;
                        for (i, n) in snapshot.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            cumulative += n;
                            out.push_str("{\"le\":");
                            match core.bounds.get(i) {
                                Some(b) => push_json_number(&mut out, *b),
                                None => out.push_str("\"+Inf\""),
                            }
                            out.push_str(",\"cumulative\":");
                            out.push_str(&cumulative.to_string());
                            out.push('}');
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// `name{labels,extra} value\n`, with label values escaped per the text
/// exposition format.
fn push_series_line(
    out: &mut String,
    name: &str,
    labels: &LabelSet,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let n_labels = labels.len() + extra.is_some() as usize;
    if n_labels > 0 {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text: `\` → `\\`, newline → `\n` (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus float rendering: shortest round-trip decimal, with the
/// spec's spellings for the non-finite values.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// JSON float rendering: non-finite values are not JSON, so they become
/// `null` (the same strictness contract the score endpoint keeps).
fn push_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        use std::fmt::Write as _;
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// JSON string escaping.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_noop_and_active() {
        let noop = Counter::noop();
        noop.inc();
        assert_eq!(noop.value(), 0);
        assert!(!noop.is_active());

        let counter = Counter::active();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.value(), 42);
        // Clones share the core.
        let clone = counter.clone();
        clone.inc();
        assert_eq!(counter.value(), 43);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let gauge = Gauge::active();
        gauge.set(10.5);
        gauge.add(-3.25);
        assert_eq!(gauge.value(), 7.25);
        gauge.add(1.0);
        assert_eq!(gauge.value(), 8.25);
        let noop = Gauge::noop();
        noop.set(99.0);
        assert_eq!(noop.value(), 0.0);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let hist = Histogram::active(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 50.0, f64::NAN] {
            hist.observe(v);
        }
        assert_eq!(hist.count(), 6);
        // 0.05 and 0.1 land in le=0.1 (le is inclusive), 0.5 in le=1, 2.0 in
        // le=10, 50 and NaN in +Inf.
        let core = hist.0.as_ref().unwrap();
        assert_eq!(core.bucket_snapshot(), vec![2, 1, 1, 2]);
        let finite_sum: f64 = [0.05, 0.1, 0.5, 2.0, 50.0].iter().sum();
        assert!(hist.sum().is_nan(), "NaN observation poisons the sum only");
        // A NaN-free histogram sums exactly.
        let clean = Histogram::active(&[0.1, 1.0, 10.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 50.0] {
            clean.observe(v);
        }
        assert_eq!(clean.sum(), finite_sum);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let hist = Histogram::active(&[1.0, 2.0, 4.0]);
        assert!(hist.quantile(0.5).is_nan(), "empty histogram has no median");
        for _ in 0..10 {
            hist.observe(1.5); // all in (1, 2]
        }
        let p50 = hist.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 {p50} outside its bucket");
        // p99 also in the same bucket.
        let p99 = hist.quantile(0.99);
        assert!((1.0..=2.0).contains(&p99));
        hist.observe(100.0); // +Inf bucket
        assert_eq!(
            hist.quantile(1.0),
            4.0,
            "+Inf quantile clamps to last bound"
        );
        assert!(Histogram::noop().quantile(0.5).is_nan());
    }

    #[test]
    fn registry_get_or_create_returns_shared_cores() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total", "Requests.", &[("route", "/score")]);
        let b = registry.counter("requests_total", "Requests.", &[("route", "/score")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2, "same (name, labels) must share one core");
        let other = registry.counter("requests_total", "Requests.", &[("route", "/healthz")]);
        assert_eq!(other.value(), 0);
        assert_eq!(registry.series_count(), 2);
        // Label order never splits a series.
        let swapped = registry.counter("multi_total", "x", &[("b", "2"), ("a", "1")]);
        swapped.inc();
        assert_eq!(
            registry
                .counter("multi_total", "x", &[("a", "1"), ("b", "2")])
                .value(),
            1
        );
    }

    #[test]
    fn kind_conflicts_yield_noop_handles() {
        // A release-mode server worker must never panic on a metric-name
        // collision; the wrong-kind handle is inert instead.
        let registry = MetricsRegistry::new();
        registry.counter("x_total", "x", &[]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.gauge("x_total", "x", &[])
        }));
        // Debug builds assert instead; both behaviours keep the invariant
        // "a conflicting handle never records".
        if let Ok(gauge) = result {
            assert!(!gauge.is_active());
        }
    }

    #[test]
    fn adopt_counter_exposes_the_same_atomic() {
        let registry = MetricsRegistry::new();
        let stats_counter = Counter::active();
        stats_counter.add(7);
        assert!(registry.adopt_counter("requests_total", "Requests.", &[], &stats_counter));
        let adopted = registry.counter("requests_total", "Requests.", &[]);
        adopted.add(3);
        assert_eq!(stats_counter.value(), 10, "adoption must share the atomic");
        assert!(
            !registry.adopt_counter("noop_total", "x", &[], &Counter::noop()),
            "a noop handle has nothing to adopt"
        );
        let text = registry.encode_prometheus();
        assert!(text.contains("requests_total 10"), "{text}");
    }

    #[test]
    fn prometheus_encoding_escapes_names_and_labels() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "weird_total",
                "help with \\ backslash\nand newline",
                &[("path", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.encode_prometheus();
        assert!(
            text.contains("# HELP weird_total help with \\\\ backslash\\nand newline"),
            "{text}"
        );
        assert!(
            text.contains("weird_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE weird_total counter"), "{text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative_and_consistent() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("latency_seconds", "Latency.", &[0.1, 1.0, 10.0], &[]);
        for v in [0.05, 0.5, 0.5, 5.0, 100.0] {
            hist.observe(v);
        }
        let text = registry.encode_prometheus();

        // Extract the bucket counts in order and assert cumulativity.
        let mut cumulative = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("latency_seconds_bucket{le=\"") {
                let (_, value) = rest.split_once("\"} ").expect("bucket line shape");
                cumulative.push(value.parse::<u64>().expect("bucket count"));
            }
        }
        assert_eq!(cumulative, vec![1, 3, 4, 5], "buckets must accumulate");
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "cumulative bucket counts must be non-decreasing"
        );
        // `le="+Inf"` equals `_count`, and `_sum` is the exact total.
        assert!(text.contains("latency_seconds_count 5"), "{text}");
        assert!(
            text.contains("latency_seconds_bucket{le=\"+Inf\"} 5"),
            "{text}"
        );
        let sum: f64 = [0.05, 0.5, 0.5, 5.0, 100.0].iter().sum();
        assert!(
            text.contains(&format!("latency_seconds_sum {sum}")),
            "{text}"
        );
        // HELP/TYPE appear exactly once for the family.
        assert_eq!(text.matches("# TYPE latency_seconds histogram").count(), 1);
    }

    #[test]
    fn prometheus_value_spellings() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    #[test]
    fn json_snapshot_is_structurally_sound() {
        let registry = MetricsRegistry::new();
        registry
            .counter("a_total", "A \"quoted\" help.", &[("k", "v")])
            .add(3);
        registry.gauge("g", "G.", &[]).set(1.5);
        let hist = registry.histogram("h_seconds", "H.", &[1.0, 2.0], &[]);
        hist.observe(1.5);
        let json = registry.snapshot_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"name\":\"a_total\""), "{json}");
        assert!(json.contains("\"A \\\"quoted\\\" help.\""), "{json}");
        assert!(json.contains("\"value\":3"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"le\":\"+Inf\""), "{json}");
        // Balanced braces/brackets (cheap structural check; the serve-side
        // loopback tests run a strict JSON parser over the same payload).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
