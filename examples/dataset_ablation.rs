//! Reproduce the paper's Figure 7 dataset ablation: how much do the
//! non-archived map changes and the speed-test-derived likely-served labels
//! improve the classifier over challenges alone?
//!
//! ```text
//! cargo run --release --example dataset_ablation
//! ```

use red_is_sus::core::experiments::figure7;
use red_is_sus::core::pipeline::AnalysisContext;
use red_is_sus::synth::{SynthConfig, SynthUs};

fn main() {
    let world = SynthUs::generate(&SynthConfig::tiny(42));
    let ctx = AnalysisContext::prepare(&world);
    let result = figure7(&world, &ctx);
    println!("{}", result.render());

    let full = result
        .rows
        .iter()
        .find(|(l, ..)| l.contains("changes + likely-served"))
        .expect("full configuration present");
    let challenges_only = result
        .rows
        .iter()
        .find(|(l, ..)| l == "challenges only")
        .expect("challenges-only configuration present");
    println!(
        "full dataset F1 {:.3} vs challenges-only F1 {:.3} (paper: augmentation markedly improves F1)",
        full.2, challenges_only.2
    );
}
