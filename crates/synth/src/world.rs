//! The assembled synthetic world and its sharded generation engine.
//!
//! [`SynthUs::generate_with`] runs the generation stages in canonical order,
//! fanning each stage's shards (states, towns, providers, hexes, releases)
//! across scoped worker threads according to a [`GenMode`]. Every random
//! quantity is drawn from a per-`(seed, stage, shard)` stream, so the world
//! is a pure function of the [`SynthConfig`] alone: sequential, parallel and
//! forced-thread-count schedules produce bit-identical worlds, a contract
//! made testable by [`SynthUs::canonical_fingerprint`].

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use asnmap::{FrnRegistration, SiblingGroups, WhoisDb};
use bdc::{
    Asn, Challenge, Fabric, Filing, LocationId, NbmRelease, Provider, ProviderId, ProviderRegistry,
    Technology,
};
use hexgrid::HexCell;
use speedtest::{MlabDataset, OoklaDataset};

use crate::activity_gen::{
    build_filings, build_releases, generate_challenges, generate_corrections,
    generate_later_challenges, later_wave_shard_count,
};
use crate::config::SynthConfig;
use crate::fabric_gen::{generate_fabric, generate_towns, Town};
use crate::providers_gen::{compute_all_claims, generate_providers, ClaimTruth, ProviderProfile};
use crate::registration_gen::generate_registrations;
use crate::shard::{GenMode, SynthReport, SynthStage, SynthStageTiming};
use crate::speedtest_gen::{generate_mlab, generate_ookla, hex_observation_truth, served_hex_sets};
use crate::states::{state_by_code, STATES};

/// The Jefferson-County-Cable-style ground-truth scenario (§6.3): which
/// provider deliberately over-claimed, where, and which states border its
/// service area (these are held out of training for the case study).
#[derive(Debug, Clone)]
pub struct JccScenario {
    pub provider: ProviderId,
    pub home_state: String,
    /// The home state plus every state whose bounding box touches it; the
    /// case-study training excludes all of them.
    pub excluded_states: Vec<String>,
    /// Hexes the provider claimed but does not serve (the misrepresented
    /// western region of Figure 8).
    pub overclaimed_hexes: BTreeSet<HexCell>,
    /// Hexes the provider claims and genuinely serves.
    pub served_hexes: BTreeSet<HexCell>,
}

/// The complete synthetic United States: every dataset the paper's pipeline
/// ingests, plus the ground truth the paper does not have.
#[derive(Debug, Clone)]
pub struct SynthUs {
    pub config: SynthConfig,
    pub towns: Vec<Town>,
    pub fabric: Fabric,
    pub providers: ProviderRegistry,
    pub profiles: Vec<ProviderProfile>,
    pub filings: Vec<Filing>,
    /// NBM releases: index 0 is the initial release, later entries are the
    /// bi-weekly-style minor releases.
    pub releases: Vec<NbmRelease>,
    /// Challenges against the initial release (the paper's analysis window).
    pub challenges: Vec<Challenge>,
    /// The much smaller challenge wave against the subsequent release
    /// (Figure 1's comparison point).
    pub later_challenges: Vec<Challenge>,
    /// Claims silently removed without a public challenge, with the index of
    /// the minor release they disappear in — the removal schedule behind the
    /// minor releases, kept so the release timeline can be re-streamed
    /// ([`SynthUs::release_emitter`]) without re-deriving it from diffs.
    pub corrections: Vec<(ProviderId, LocationId, Technology, usize)>,
    pub ookla: OoklaDataset,
    pub mlab: MlabDataset,
    pub registrations: Vec<FrnRegistration>,
    pub whois: WhoisDb,
    /// Ground-truth provider→ASN assignment (what a perfect matcher recovers).
    pub true_provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>>,
    /// as2org-style reference sibling groups.
    pub reference_groups: SiblingGroups,
    /// Hex-level ground truth for every claimed observation.
    pub ground_truth: BTreeMap<(ProviderId, HexCell, Technology), bool>,
    pub jcc: Option<JccScenario>,
}

/// Time one stage's body, recording its shard count alongside the wall-clock.
fn timed<T>(stage: SynthStage, shards: usize, f: impl FnOnce() -> T) -> (T, SynthStageTiming) {
    let start = Instant::now();
    let out = f();
    (
        out,
        SynthStageTiming {
            stage,
            wall: start.elapsed(),
            shards: shards.max(1),
        },
    )
}

impl SynthUs {
    /// Generate the full world from a configuration with the default
    /// (parallel) schedule, discarding the execution report.
    ///
    /// # Panics
    /// Panics when the configuration fails validation; the panic payload is
    /// `"invalid SynthConfig: "` followed by the exact message
    /// [`SynthConfig::validate`] returned (e.g. `"invalid SynthConfig:
    /// n_bsls must be positive"`). Use [`SynthUs::generate_with`] for a
    /// non-panicking `Result`.
    pub fn generate(config: &SynthConfig) -> Self {
        match Self::generate_with(config, GenMode::default()) {
            Ok((world, _)) => world,
            Err(msg) => panic!("invalid SynthConfig: {msg}"),
        }
    }

    /// Generate the full world under an explicit schedule, returning the
    /// world together with its [`SynthReport`] (per-stage wall-clock and
    /// shard counts). Returns `Err` with the validation message when the
    /// configuration is invalid.
    ///
    /// The generated world depends only on `config`: every [`GenMode`]
    /// produces a bit-identical world (see
    /// [`SynthUs::canonical_fingerprint`]); the mode decides only how many
    /// worker threads the shards are fanned across.
    pub fn generate_with(
        config: &SynthConfig,
        mode: GenMode,
    ) -> Result<(Self, SynthReport), String> {
        config.validate()?;
        let start = Instant::now();
        let workers = mode.worker_count();
        let executed = if workers <= 1 {
            GenMode::Sequential
        } else {
            GenMode::Threads(workers)
        };
        let mut timings: Vec<SynthStageTiming> = Vec::with_capacity(SynthStage::ALL.len());

        let (towns, t) = timed(SynthStage::Towns, STATES.len(), || {
            generate_towns(config, workers)
        });
        timings.push(t);

        let (fabric, t) = timed(SynthStage::Fabric, towns.len(), || {
            generate_fabric(config, &towns, workers)
        });
        timings.push(t);

        let (profiles, t) = timed(SynthStage::Providers, config.n_providers, || {
            generate_providers(config, &towns, workers)
        });
        timings.push(t);

        let (claims, t): (BTreeMap<ProviderId, Vec<ClaimTruth>>, _) =
            timed(SynthStage::Claims, profiles.len(), || {
                compute_all_claims(&profiles, &towns, &fabric, config, workers)
            });
        timings.push(t);

        let (filings, t) = timed(SynthStage::Filings, 1, || build_filings(&profiles, &claims));
        timings.push(t);

        let (challenges, t) = timed(SynthStage::Challenges, claims.len(), || {
            generate_challenges(config, &fabric, &claims, workers)
        });
        timings.push(t);

        let (later_challenges, t) = timed(
            SynthStage::LaterChallenges,
            later_wave_shard_count(challenges.len()),
            || generate_later_challenges(config, &challenges, workers),
        );
        timings.push(t);

        let challenged_keys: BTreeSet<_> = challenges
            .iter()
            .map(|c| (c.provider, c.location, c.technology))
            .collect();
        let (corrections, t) = timed(SynthStage::Corrections, claims.len(), || {
            generate_corrections(config, &claims, &challenged_keys, workers)
        });
        timings.push(t);

        let (releases, t) = timed(SynthStage::Releases, config.n_minor_releases + 1, || {
            build_releases(
                config,
                &filings,
                &fabric,
                &challenges,
                &corrections,
                workers,
            )
        });
        timings.push(t);

        let claims_count: BTreeMap<ProviderId, usize> = filings
            .iter()
            .map(|f| (f.provider, f.claimed_location_count()))
            .collect();
        let (registration_data, t) = timed(SynthStage::Registrations, profiles.len(), || {
            generate_registrations(config, &profiles, &claims_count, workers)
        });
        timings.push(t);

        let (served_hexes, served_by_provider) = served_hex_sets(&fabric, &claims);
        let occupied_hexes = fabric.hexes().count();
        let (ookla, t) = timed(SynthStage::Ookla, occupied_hexes, || {
            generate_ookla(config, &fabric, &served_hexes, workers)
        });
        timings.push(t);

        let (mlab, t) = timed(
            SynthStage::Mlab,
            registration_data.true_provider_asns.len(),
            || {
                generate_mlab(
                    config,
                    &registration_data.true_provider_asns,
                    &served_by_provider,
                    workers,
                )
            },
        );
        timings.push(t);

        let (world, t) = timed(SynthStage::GroundTruth, 1, || {
            let ground_truth = hex_observation_truth(&fabric, &claims);
            let jcc = profiles.iter().find(|p| p.jcc_like).map(|p| {
                let provider = p.provider.id;
                let mut overclaimed = BTreeSet::new();
                let mut served = BTreeSet::new();
                for ((pid, hex, _tech), truly) in &ground_truth {
                    if *pid == provider {
                        if *truly {
                            served.insert(*hex);
                        } else {
                            overclaimed.insert(*hex);
                        }
                    }
                }
                let home_state = p.provider.home_state.clone();
                JccScenario {
                    provider,
                    excluded_states: neighboring_states(&home_state),
                    home_state,
                    overclaimed_hexes: overclaimed,
                    served_hexes: served,
                }
            });

            let providers = ProviderRegistry::new(
                profiles
                    .iter()
                    .map(|p| p.provider.clone())
                    .collect::<Vec<Provider>>(),
            );

            Self {
                config: *config,
                towns,
                fabric,
                providers,
                profiles,
                filings,
                releases,
                challenges,
                later_challenges,
                corrections,
                ookla,
                mlab,
                registrations: registration_data.registrations,
                whois: registration_data.whois,
                true_provider_asns: registration_data.true_provider_asns,
                reference_groups: registration_data.reference_groups,
                ground_truth,
                jcc,
            }
        });
        timings.push(t);

        let report = SynthReport {
            mode,
            executed,
            workers,
            timings,
            total_wall: start.elapsed(),
        };
        Ok((world, report))
    }

    /// The initial NBM release the paper studies.
    pub fn initial_release(&self) -> &NbmRelease {
        &self.releases[0]
    }

    /// The most recent minor release (used to compute map diffs).
    pub fn latest_release(&self) -> &NbmRelease {
        self.releases
            .last()
            .expect("at least the initial release exists")
    }

    /// A streaming view of the release timeline: one compact sorted copy of
    /// the initial claims plus the removal schedule, able to emit any
    /// release's claims chunk-by-chunk without materialising it (see
    /// [`crate::release_stream`]).
    pub fn release_emitter(&self) -> crate::release_stream::ReleaseEmitter {
        crate::release_stream::ReleaseEmitter::new(
            self.config.n_minor_releases,
            &self.filings,
            &self.challenges,
            &self.corrections,
        )
    }

    /// Ground truth for an observation, if the provider claimed it at all.
    pub fn is_truly_served(
        &self,
        provider: ProviderId,
        hex: HexCell,
        tech: Technology,
    ) -> Option<bool> {
        self.ground_truth.get(&(provider, hex, tech)).copied()
    }

    /// An order-independent digest of every generated field, for asserting
    /// that two worlds are identical (e.g. sharded-parallel vs sequential vs
    /// forced-thread-count generation).
    ///
    /// Same discipline as `AnalysisContext::canonical_fingerprint` in
    /// `redsus_core`: collections are folded in their deterministic order and
    /// floats are hashed by their exact bit patterns, so two worlds
    /// fingerprint equal iff every value in every field is bit-identical.
    /// The fold runs through [`crate::shard::StableHasher`] (not `std`'s
    /// release-unstable `DefaultHasher`), so fingerprints can be pinned as
    /// golden constants across toolchains.
    pub fn canonical_fingerprint(&self) -> u64 {
        let mut h = crate::shard::StableHasher::new();
        let f = |v: f64, h: &mut crate::shard::StableHasher| v.to_bits().hash(h);

        // Config: the world must be a pure function of it.
        self.config.seed.hash(&mut h);
        (self.config.n_bsls, self.config.n_providers).hash(&mut h);

        // Towns and fabric.
        self.towns.len().hash(&mut h);
        for t in &self.towns {
            (t.state_index, t.state.as_str(), t.n_bsls).hash(&mut h);
            f(t.center.lat, &mut h);
            f(t.center.lng, &mut h);
        }
        self.fabric.len().hash(&mut h);
        for b in self.fabric.bsls() {
            (
                b.id,
                b.unit_count,
                b.community_anchor,
                b.state.as_str(),
                b.hex,
            )
                .hash(&mut h);
            f(b.position.lat, &mut h);
            f(b.position.lng, &mut h);
        }

        // Providers and their deployments.
        self.profiles.len().hash(&mut h);
        for p in &self.profiles {
            let pr = &p.provider;
            (pr.id, pr.name.as_str(), pr.brand.as_str(), &pr.frns).hash(&mut h);
            (&pr.technologies, pr.major, pr.home_state.as_str()).hash(&mut h);
            (&p.towns, p.style, p.methodology, p.jcc_like).hash(&mut h);
            for d in &p.deployments {
                (d.technology, d.low_latency).hash(&mut h);
                f(d.true_radius_km, &mut h);
                f(d.max_down_mbps, &mut h);
                f(d.max_up_mbps, &mut h);
            }
        }

        // Filings and releases.
        self.filings.len().hash(&mut h);
        for filing in &self.filings {
            (filing.provider, filing.as_of, filing.methodology.as_str()).hash(&mut h);
            filing.records.len().hash(&mut h);
            for r in &filing.records {
                (
                    r.provider,
                    r.location,
                    r.technology,
                    r.low_latency,
                    r.service_type,
                )
                    .hash(&mut h);
                f(r.max_down_mbps, &mut h);
                f(r.max_up_mbps, &mut h);
            }
        }
        self.releases.len().hash(&mut h);
        for rel in &self.releases {
            (rel.version, rel.published, rel.records().len()).hash(&mut h);
            for r in rel.records() {
                (r.provider, r.location, r.technology).hash(&mut h);
            }
            rel.hex_claims().len().hash(&mut h);
        }

        // Challenge waves.
        for wave in [&self.challenges, &self.later_challenges] {
            wave.len().hash(&mut h);
            for c in wave.iter() {
                (
                    c.provider,
                    c.location,
                    c.hex,
                    c.technology,
                    c.state.as_str(),
                )
                    .hash(&mut h);
                (c.reason, c.outcome, c.filed, c.resolved).hash(&mut h);
            }
        }

        // The silent-correction schedule behind the minor releases.
        self.corrections.hash(&mut h);

        // Speed tests.
        self.ookla.len().hash(&mut h);
        for r in self.ookla.records() {
            (r.tile, r.tests, r.devices).hash(&mut h);
            f(r.avg_download_kbps, &mut h);
            f(r.avg_upload_kbps, &mut h);
            f(r.avg_latency_ms, &mut h);
        }
        self.mlab.len().hash(&mut h);
        for t in self.mlab.tests() {
            (t.asn, t.day).hash(&mut h);
            f(t.download_mbps, &mut h);
            f(t.upload_mbps, &mut h);
            f(t.latency_ms, &mut h);
            f(t.geo_center.lat, &mut h);
            f(t.geo_center.lng, &mut h);
            f(t.accuracy_radius_km, &mut h);
        }

        // Registrations, WHOIS and the ASN ground truth.
        self.registrations.len().hash(&mut h);
        for r in &self.registrations {
            (r.frn, r.provider_id, r.contact_email.as_str()).hash(&mut h);
            (r.company_name.as_str(), r.physical_address.as_str()).hash(&mut h);
        }
        self.whois.asns.len().hash(&mut h);
        for a in &self.whois.asns {
            (a.asn, a.org_id, &a.poc_ids).hash(&mut h);
        }
        self.whois.orgs.len().hash(&mut h);
        for o in &self.whois.orgs {
            (o.id, o.name.as_str(), &o.poc_ids).hash(&mut h);
        }
        self.whois.nets.len().hash(&mut h);
        for n in &self.whois.nets {
            (n.id, n.org_id, &n.poc_ids).hash(&mut h);
        }
        self.whois.pocs.len().hash(&mut h);
        for p in &self.whois.pocs {
            (
                p.id,
                p.email.as_str(),
                p.company_name.as_str(),
                p.address.as_str(),
            )
                .hash(&mut h);
        }
        self.true_provider_asns.hash(&mut h);
        for (name, asns) in self.reference_groups.groups() {
            (name.as_str(), asns).hash(&mut h);
        }

        // Observation-level ground truth and the JCC scenario.
        self.ground_truth.hash(&mut h);
        match &self.jcc {
            None => 0u8.hash(&mut h),
            Some(jcc) => {
                1u8.hash(&mut h);
                (jcc.provider, jcc.home_state.as_str(), &jcc.excluded_states).hash(&mut h);
                (&jcc.overclaimed_hexes, &jcc.served_hexes).hash(&mut h);
            }
        }

        h.finish()
    }
}

/// The home state plus every state/territory whose bounding box intersects an
/// expanded version of it — a stand-in for "all states bordering the provider's
/// service area" used by the JCC case study.
pub fn neighboring_states(home: &str) -> Vec<String> {
    let Some(home_info) = state_by_code(home) else {
        return vec![home.to_string()];
    };
    let expanded = home_info.bounding_box().expanded(0.8);
    let mut out: Vec<String> = STATES
        .iter()
        .filter(|s| expanded.intersects(&s.bounding_box()))
        .map(|s| s.code.to_string())
        .collect();
    if !out.contains(&home.to_string()) {
        out.push(home.to_string());
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdc::challenge::success_rate;
    use bdc::MapDiff;

    // Seed re-pinned when generation moved to sharded per-stage RNG streams
    // (the world is different, byte for byte, from the single-stream era).
    fn tiny_world() -> SynthUs {
        SynthUs::generate(&SynthConfig::tiny(21))
    }

    #[test]
    fn world_has_all_components() {
        let w = tiny_world();
        assert!(!w.fabric.is_empty());
        assert_eq!(w.providers.len(), w.config.n_providers);
        assert_eq!(w.filings.len(), w.config.n_providers);
        assert_eq!(w.releases.len(), w.config.n_minor_releases + 1);
        assert!(!w.challenges.is_empty());
        assert!(!w.ookla.is_empty());
        assert!(!w.mlab.is_empty());
        assert!(!w.registrations.is_empty());
        assert!(!w.ground_truth.is_empty());
        assert!(w.jcc.is_some());
    }

    #[test]
    fn diff_between_releases_contains_removals() {
        let w = tiny_world();
        let diff = MapDiff::between(w.initial_release(), w.latest_release());
        let (added, removed, _) = diff.counts();
        assert!(removed > 0, "expected removals in the diff");
        assert_eq!(added, 0, "the synthetic timeline never adds claims");
    }

    #[test]
    fn challenge_mix_matches_paper_shape() {
        let w = tiny_world();
        let rate = success_rate(&w.challenges);
        assert!((0.55..0.85).contains(&rate), "success rate {rate}");
        assert!(w.later_challenges.len() < w.challenges.len() / 10);
    }

    #[test]
    fn ground_truth_covers_all_initial_claims() {
        let w = tiny_world();
        for claim in w.initial_release().hex_claims().iter().step_by(53) {
            assert!(
                w.is_truly_served(claim.provider, claim.hex, claim.technology)
                    .is_some(),
                "missing ground truth for a claimed observation"
            );
        }
    }

    #[test]
    fn jcc_scenario_is_consistent() {
        let w = tiny_world();
        let jcc = w.jcc.as_ref().unwrap();
        assert!(
            !jcc.overclaimed_hexes.is_empty(),
            "JCC has no over-claimed hexes"
        );
        assert!(!jcc.served_hexes.is_empty(), "JCC has no served hexes");
        assert!(jcc.excluded_states.contains(&jcc.home_state));
        // The provider exists and is not a major.
        let provider = w.providers.get(jcc.provider).unwrap();
        assert!(!provider.major);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthUs::generate(&SynthConfig::tiny(77));
        let b = SynthUs::generate(&SynthConfig::tiny(77));
        assert_eq!(a.fabric.len(), b.fabric.len());
        assert_eq!(a.challenges.len(), b.challenges.len());
        assert_eq!(a.mlab.len(), b.mlab.len());
        assert_eq!(
            a.initial_release().claim_count(),
            b.initial_release().claim_count()
        );
        assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn invalid_config_panics_with_verbatim_validation_message() {
        let mut config = SynthConfig::tiny(1);
        config.n_bsls = 0;
        let expected = config.validate().unwrap_err();
        let payload = std::panic::catch_unwind(|| SynthUs::generate(&config))
            .expect_err("generate must panic on an invalid config");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert_eq!(msg, format!("invalid SynthConfig: {expected}"));
    }

    #[test]
    fn generate_with_reports_every_stage() {
        let (w, report) =
            SynthUs::generate_with(&SynthConfig::tiny(55), GenMode::Sequential).unwrap();
        assert_eq!(report.mode, GenMode::Sequential);
        assert_eq!(report.executed, GenMode::Sequential);
        assert_eq!(report.workers, 1);
        assert_eq!(report.timings.len(), SynthStage::ALL.len());
        for (timing, expected) in report.timings.iter().zip(SynthStage::ALL) {
            assert_eq!(timing.stage, expected, "timings not in canonical order");
            assert!(timing.shards >= 1);
        }
        assert_eq!(
            report.shards_for(SynthStage::Providers),
            Some(w.config.n_providers)
        );
        assert_eq!(
            report.shards_for(SynthStage::Releases),
            Some(w.config.n_minor_releases + 1)
        );
        assert!(report.total_wall >= report.wall_for(SynthStage::Fabric).unwrap());
        assert!(report.stage_sum() <= report.total_wall * 2);
    }

    #[test]
    fn forced_thread_counts_report_threads_and_match_sequential() {
        let (seq, _) = SynthUs::generate_with(&SynthConfig::tiny(55), GenMode::Sequential).unwrap();
        let (forced, report) =
            SynthUs::generate_with(&SynthConfig::tiny(55), GenMode::Threads(3)).unwrap();
        assert_eq!(report.executed, GenMode::Threads(3));
        assert_eq!(report.workers, 3);
        assert_eq!(
            seq.canonical_fingerprint(),
            forced.canonical_fingerprint(),
            "forced-thread generation must be bit-identical to sequential"
        );
    }

    #[test]
    fn fingerprints_differ_across_seeds() {
        let a = SynthUs::generate(&SynthConfig::tiny(77));
        let b = SynthUs::generate(&SynthConfig::tiny(78));
        assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    #[test]
    fn neighboring_states_include_home_and_touching_states() {
        let n = neighboring_states("OH");
        assert!(n.contains(&"OH".to_string()));
        assert!(n.contains(&"MI".to_string()) || n.contains(&"IN".to_string()));
        assert!(n.len() < 20);
        assert_eq!(neighboring_states("ZZ"), vec!["ZZ".to_string()]);
    }

    #[test]
    fn satellite_free_world() {
        // The generator only creates terrestrial deployments; the paper
        // excludes satellite providers from the model anyway.
        let w = tiny_world();
        for p in w.providers.providers() {
            assert!(p.technologies.iter().all(|t| t.is_terrestrial()));
        }
    }
}
