//! Hermetic loopback tests of the HTTP scoring endpoint: every request runs
//! against 127.0.0.1 on an ephemeral port — no network access, no fixed
//! ports, clean shutdown — so the suite stays green in offline CI.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ml::{Dataset, GbdtModel, GbdtParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redsus_serve::{ScoreServer, ServeConfig, ServedModel};

fn trained_model() -> (GbdtModel, Dataset) {
    let mut rng = StdRng::seed_from_u64(0x5e12e);
    let mut d = Dataset::new(vec!["down".into(), "up".into(), "tests".into()]);
    for _ in 0..300 {
        let down: f32 = rng.gen_range(0.0..1000.0);
        let up: f32 = rng.gen_range(0.0..100.0);
        let tests: f32 = rng.gen_range(0.0..50.0);
        let label = if down > 400.0 && tests < 20.0 {
            1.0
        } else {
            0.0
        };
        d.push_row(&[down, up, tests], label);
    }
    let model = GbdtModel::fit(
        &d,
        GbdtParams {
            n_estimators: 12,
            max_depth: 4,
            learning_rate: 0.2,
            ..GbdtParams::default()
        },
    );
    (model, d)
}

fn start_server() -> (ScoreServer, GbdtModel, Dataset) {
    let (model, data) = trained_model();
    let served = ServedModel::from_model(model.clone());
    let server = ScoreServer::start(served, ServeConfig::default()).expect("bind loopback");
    (server, model, data)
}

/// A minimal one-shot HTTP/1.1 client: send raw bytes, read to EOF, split
/// the response into (status, body). `Connection: close` is injected into
/// the headers because reading to EOF on a keep-alive connection would
/// stall until the server's idle timeout. (The keep-alive path has its own
/// framed client in `tests/keepalive.rs`.)
fn request(server: &ScoreServer, raw: &str) -> (u16, String) {
    let raw = raw.replacen("\r\n\r\n", "\r\nConnection: close\r\n\r\n", 1);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_score(server: &ScoreServer, query: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST /score{query} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    request(server, &raw)
}

/// Pull the `"scores":[…]` array out of a response body.
fn parse_scores(body: &str) -> Vec<f64> {
    let start = body.find("\"scores\":[").expect("scores array") + "\"scores\":[".len();
    let end = start + body[start..].find(']').expect("array end");
    let inner = &body[start..end];
    if inner.is_empty() {
        return Vec::new();
    }
    inner
        .split(',')
        .map(|s| s.parse::<f64>().expect("score is a float"))
        .collect()
}

fn csv_body(names: &[String], rows: &[&[f32]]) -> String {
    let mut body = names.join(",");
    body.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_nan() {
                    String::new()
                } else {
                    format!("{v}")
                }
            })
            .collect();
        body.push_str(&cells.join(","));
        body.push('\n');
    }
    body
}

#[test]
fn healthz_reports_the_model() {
    let (server, model, _) = start_server();
    let (status, body) = request(&server, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(
        body.contains(&format!("\"trees\":{}", model.n_trees())),
        "{body}"
    );
    assert!(body.contains("\"fingerprint\":\"0x"), "{body}");
    server.shutdown();
}

#[test]
fn model_endpoint_lists_the_schema() {
    let (server, model, _) = start_server();
    let (status, body) = request(&server, "GET /model HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    for name in model.feature_names() {
        assert!(body.contains(&format!("\"{name}\"")), "{body}");
    }
    server.shutdown();
}

/// The core contract: scores served over the wire equal in-process
/// predictions bit for bit (the response floats are shortest-round-trip
/// formatted, so parsing them back recovers the exact f64).
#[test]
fn served_scores_equal_in_process_predictions() {
    let (server, model, data) = start_server();
    let rows: Vec<&[f32]> = (0..40).map(|r| data.row(r)).collect();
    let body = csv_body(data.feature_names(), &rows);
    let (status, response) = post_score(&server, "", &body);
    assert_eq!(status, 200, "{response}");
    let scores = parse_scores(&response);
    assert_eq!(scores.len(), 40);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            scores[i].to_bits(),
            model.predict_proba(row).to_bits(),
            "row {i} drifted over the wire"
        );
    }
    // Margins too.
    let (status, response) = post_score(&server, "?output=margin", &body);
    assert_eq!(status, 200);
    let margins = parse_scores(&response);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(margins[i].to_bits(), model.predict_margin(row).to_bits());
    }
    let stats = server.shutdown();
    assert_eq!(stats.scored_rows, 80);
    assert_eq!(stats.requests, 2);
}

/// Clients name their columns: a permuted header with an extra column still
/// scores identically, and the gaps are echoed back.
#[test]
fn columns_align_by_name() {
    let (server, model, data) = start_server();
    // Header order (tests, down) + an unknown column; "up" missing.
    let mut body = String::from("tests,extraneous,down\n");
    let mut expected = Vec::new();
    for r in 0..10 {
        let row = data.row(r);
        body.push_str(&format!("{},{},{}\n", row[2], 42.0, row[0]));
        expected.push(model.predict_proba(&[row[0], f32::NAN, row[2]]));
    }
    let (status, response) = post_score(&server, "", &body);
    assert_eq!(status, 200, "{response}");
    let scores = parse_scores(&response);
    for (i, e) in expected.iter().enumerate() {
        assert_eq!(scores[i].to_bits(), e.to_bits(), "row {i}");
    }
    assert!(
        response.contains("\"missing_features\":[\"up\"]"),
        "{response}"
    );
    assert!(
        response.contains("\"ignored_columns\":[\"extraneous\"]"),
        "{response}"
    );
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors() {
    let (server, _, _) = start_server();
    // Unknown route.
    let (status, body) = request(&server, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""));
    // Wrong method on /score.
    let (status, _) = request(&server, "GET /score HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 405);
    // Bad CSV cell.
    let (status, body) = post_score(&server, "", "down,up,tests\n1.0,zebra,3\n");
    assert_eq!(status, 400);
    assert!(body.contains("zebra"), "{body}");
    // Ragged row.
    let (status, _) = post_score(&server, "", "down,up,tests\n1.0,2.0\n");
    assert_eq!(status, 400);
    // Bad output selector.
    let (status, _) = post_score(&server, "?output=shap", "down,up,tests\n1,2,3\n");
    assert_eq!(status, 400);
    // Duplicate header column: rejected loudly at the parse, not silently
    // first-wins at alignment.
    let (status, body) = post_score(&server, "", "down,up,down\n1.0,2.0,3.0\n");
    assert_eq!(status, 400);
    assert!(body.contains("duplicate column"), "{body}");
    assert!(body.contains("down"), "{body}");
    // Unsupported HTTP version.
    let (status, _) = request(&server, "GET /healthz SPDY/99\r\n\r\n");
    assert_eq!(status, 505);
    // Chunked transfer encoding: honestly unimplemented, not silently
    // scored as an empty body.
    let (status, body) = request(
        &server,
        "POST /score HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(status, 501);
    assert!(body.contains("Content-Length"), "{body}");
    server.shutdown();
}

#[test]
fn oversized_bodies_are_refused() {
    let (model, _) = trained_model();
    let server = ScoreServer::start(
        ServedModel::from_model(model),
        ServeConfig {
            max_body_bytes: 256,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let big = "x".repeat(1024);
    let (status, _) = post_score(&server, "", &big);
    assert_eq!(status, 413);

    // A body large enough to overflow the socket buffers: the server
    // rejects from the Content-Length header alone, but must still drain
    // the bytes the client is mid-sending so the 413 arrives over a clean
    // close instead of being torn down by a reset.
    let huge = "y".repeat(512 << 10);
    let raw = format!(
        "POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{huge}",
        huge.len()
    );
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send huge body");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read 413 despite the huge body");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    server.shutdown();
}

/// Requests fan across the bounded worker pool concurrently and every
/// response stays bit-exact.
#[test]
fn concurrent_clients_get_consistent_answers() {
    let (server, model, data) = start_server();
    let body = csv_body(data.feature_names(), &[data.row(0), data.row(1)]);
    let expected: Vec<u64> = [data.row(0), data.row(1)]
        .iter()
        .map(|r| model.predict_proba(r).to_bits())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = &body;
                let expected = &expected;
                let server = &server;
                scope.spawn(move || {
                    let (status, response) = post_score(server, "", body);
                    assert_eq!(status, 200);
                    let scores = parse_scores(&response);
                    let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
                    assert_eq!(&bits, expected);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.scored_rows, 16);
}

/// Shutdown joins every thread and releases the port: subsequent connects
/// are refused instead of hanging.
#[test]
fn shutdown_is_graceful_and_releases_the_port() {
    let (server, _, data) = start_server();
    let addr = server.addr();
    // The server answers before shutdown…
    let (status, _) = request(&server, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    let _ = data;
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
    // …and is really gone after: connecting now must fail (the listener is
    // closed and the port released).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
}
