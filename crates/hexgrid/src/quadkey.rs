//! The Bing-Maps tile system ("quadkeys").
//!
//! Ookla's public open dataset aggregates speed tests into Web-Mercator tiles
//! of roughly 500 m a side (zoom level 16) and identifies each tile by its
//! quadkey string. This module implements the tile system exactly as described
//! in Microsoft's documentation: XYZ tile coordinates at a zoom level, the
//! base-4 quadkey encoding, tile bounds and centroids.

use geoprim::{BoundingBox, LatLng, WebMercator};
use serde::{Deserialize, Serialize};

/// The zoom level at which Ookla publishes its open data tiles (~500 m tiles
/// in mid-latitudes).
pub const OOKLA_ZOOM: u8 = 16;

/// Maximum supported zoom level.
pub const MAX_ZOOM: u8 = 23;

/// A Web-Mercator map tile: `(x, y)` tile coordinates at a zoom level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuadTile {
    x: u32,
    y: u32,
    zoom: u8,
}

/// Error returned when parsing an invalid quadkey string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuadkeyError {
    /// The string was empty or longer than [`MAX_ZOOM`] characters.
    BadLength(usize),
    /// A character other than `0`-`3` was found.
    BadDigit(char),
}

impl std::fmt::Display for QuadkeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuadkeyError::BadLength(n) => {
                write!(f, "quadkey length {n} out of range 1..={MAX_ZOOM}")
            }
            QuadkeyError::BadDigit(c) => write!(f, "invalid quadkey digit '{c}'"),
        }
    }
}

impl std::error::Error for QuadkeyError {}

impl QuadTile {
    /// Construct a tile from raw XYZ coordinates, clamping to the valid range
    /// for the zoom level.
    pub fn new(x: u32, y: u32, zoom: u8) -> Self {
        let zoom = zoom.min(MAX_ZOOM);
        let max = (1u32 << zoom) - 1;
        Self {
            x: x.min(max),
            y: y.min(max),
            zoom,
        }
    }

    /// The tile containing geographic point `p` at the given zoom level.
    pub fn containing(p: &LatLng, zoom: u8) -> Self {
        let zoom = zoom.min(MAX_ZOOM);
        let (px, py) = WebMercator.project(p);
        let n = (1u64 << zoom) as f64;
        let x = ((px * n).floor() as i64).clamp(0, (1i64 << zoom) - 1) as u32;
        let y = ((py * n).floor() as i64).clamp(0, (1i64 << zoom) - 1) as u32;
        Self { x, y, zoom }
    }

    /// Tile X coordinate.
    pub fn x(&self) -> u32 {
        self.x
    }

    /// Tile Y coordinate.
    pub fn y(&self) -> u32 {
        self.y
    }

    /// Zoom level.
    pub fn zoom(&self) -> u8 {
        self.zoom
    }

    /// The quadkey string for this tile (one base-4 digit per zoom level,
    /// most-significant first), per the Bing Maps tile system.
    pub fn quadkey(&self) -> String {
        let mut key = String::with_capacity(self.zoom as usize);
        for i in (1..=self.zoom).rev() {
            let mask = 1u32 << (i - 1);
            let mut digit = 0u8;
            if self.x & mask != 0 {
                digit += 1;
            }
            if self.y & mask != 0 {
                digit += 2;
            }
            key.push(char::from(b'0' + digit));
        }
        key
    }

    /// Parse a quadkey string back into a tile.
    pub fn from_quadkey(key: &str) -> Result<Self, QuadkeyError> {
        let len = key.len();
        if len == 0 || len > MAX_ZOOM as usize {
            return Err(QuadkeyError::BadLength(len));
        }
        let mut x = 0u32;
        let mut y = 0u32;
        for c in key.chars() {
            x <<= 1;
            y <<= 1;
            match c {
                '0' => {}
                '1' => x |= 1,
                '2' => y |= 1,
                '3' => {
                    x |= 1;
                    y |= 1;
                }
                other => return Err(QuadkeyError::BadDigit(other)),
            }
        }
        Ok(Self {
            x,
            y,
            zoom: len as u8,
        })
    }

    /// Geographic bounding box of the tile.
    pub fn bounds(&self) -> BoundingBox {
        let n = (1u64 << self.zoom) as f64;
        let m = WebMercator;
        let nw = m.unproject(self.x as f64 / n, self.y as f64 / n);
        let se = m.unproject((self.x + 1) as f64 / n, (self.y + 1) as f64 / n);
        BoundingBox::new(nw.lat, nw.lng, se.lat, se.lng)
    }

    /// Centre of the tile.
    pub fn center(&self) -> LatLng {
        let n = (1u64 << self.zoom) as f64;
        WebMercator.unproject((self.x as f64 + 0.5) / n, (self.y as f64 + 0.5) / n)
    }

    /// The parent tile one zoom level up, or `None` at zoom 0/1 boundary.
    pub fn parent(&self) -> Option<QuadTile> {
        if self.zoom == 0 {
            return None;
        }
        Some(QuadTile {
            x: self.x / 2,
            y: self.y / 2,
            zoom: self.zoom - 1,
        })
    }

    /// The four child tiles one zoom level down, or `None` at [`MAX_ZOOM`].
    pub fn children(&self) -> Option<[QuadTile; 4]> {
        if self.zoom >= MAX_ZOOM {
            return None;
        }
        let z = self.zoom + 1;
        let (x, y) = (self.x * 2, self.y * 2);
        Some([
            QuadTile { x, y, zoom: z },
            QuadTile {
                x: x + 1,
                y,
                zoom: z,
            },
            QuadTile {
                x,
                y: y + 1,
                zoom: z,
            },
            QuadTile {
                x: x + 1,
                y: y + 1,
                zoom: z,
            },
        ])
    }

    /// Approximate tile width in metres at the tile's own latitude.
    pub fn width_m(&self) -> f64 {
        let b = self.bounds();
        let west = LatLng::new(self.center().lat, b.min_lng);
        let east = LatLng::new(self.center().lat, b.max_lng);
        west.haversine_m(&east)
    }
}

impl std::fmt::Display for QuadTile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.quadkey())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bing_doc_example() {
        // From the Bing Maps tile system documentation: tile (3, 5) at zoom 3
        // has quadkey "213".
        let t = QuadTile::new(3, 5, 3);
        assert_eq!(t.quadkey(), "213");
        assert_eq!(QuadTile::from_quadkey("213").unwrap(), t);
    }

    #[test]
    fn quadkey_parse_rejects_bad_input() {
        assert_eq!(QuadTile::from_quadkey(""), Err(QuadkeyError::BadLength(0)));
        assert_eq!(
            QuadTile::from_quadkey("0124"),
            Err(QuadkeyError::BadDigit('4'))
        );
    }

    #[test]
    fn containing_tile_bounds_contain_point() {
        let p = LatLng::new(37.2296, -80.4139);
        let t = QuadTile::containing(&p, OOKLA_ZOOM);
        assert!(t.bounds().contains(&p));
    }

    #[test]
    fn ookla_zoom_tile_about_500m() {
        let p = LatLng::new(37.2296, -80.4139);
        let t = QuadTile::containing(&p, OOKLA_ZOOM);
        let w = t.width_m();
        assert!((300.0..700.0).contains(&w), "width {w} m");
    }

    #[test]
    fn parent_child_round_trip() {
        let p = LatLng::new(40.0, -100.0);
        let t = QuadTile::containing(&p, 10);
        let kids = t.children().unwrap();
        for k in kids {
            assert_eq!(k.parent().unwrap(), t);
        }
    }

    #[test]
    fn zoom0_has_no_parent() {
        assert!(QuadTile::new(0, 0, 0).parent().is_none());
    }

    #[test]
    fn neighbouring_points_get_distinct_tiles() {
        let a = QuadTile::containing(&LatLng::new(37.0, -80.0), OOKLA_ZOOM);
        let b = QuadTile::containing(&LatLng::new(37.1, -80.0), OOKLA_ZOOM);
        assert_ne!(a, b);
    }

    #[test]
    fn constructor_clamps_to_zoom_range() {
        let t = QuadTile::new(1000, 1000, 3);
        assert!(t.x() < 8 && t.y() < 8);
    }

    #[test]
    fn display_is_quadkey() {
        let t = QuadTile::new(3, 5, 3);
        assert_eq!(format!("{t}"), "213");
    }
}
