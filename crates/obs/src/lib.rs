//! End-to-end telemetry for the red-is-sus reproduction.
//!
//! Everything here is hand-rolled on `std` — no new dependencies, matching
//! the workspace's vendored-stub philosophy — and everything is
//! **observation-only**: no instrument touches RNG state, changes iteration
//! order, or otherwise perturbs the deterministic data path, so golden
//! fingerprints are byte-identical with telemetry on or off.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] + [`Counter`]/[`Gauge`]/[`Histogram`] — lock-free
//!   recording, Prometheus text exposition
//!   ([`MetricsRegistry::encode_prometheus`]) and a strict-JSON snapshot
//!   ([`MetricsRegistry::snapshot_json`]) with derived p50/p99.
//! * [`TraceSink`] — a JSONL event sink producing a replayable
//!   per-stage/per-shard timeline (`--trace-out` on the national example
//!   and `redsus-score serve`).
//! * [`SpanTimer`] — scoped wall-clock → histogram recording.
//!
//! [`Telemetry`] bundles an optional registry and an optional trace sink
//! into the single handle the pipeline, streaming runner, and score server
//! thread through their layers. A disabled handle ([`Telemetry::disabled`])
//! makes every recording call a branch-on-`None` — the
//! zero-cost-when-disabled contract.

mod metrics;
mod span;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, MetricKind, MetricsRegistry, DEFAULT_LATENCY_BUCKETS,
    DEFAULT_WALL_BUCKETS,
};
pub use span::SpanTimer;
pub use trace::{TraceSink, TraceValue};

use std::sync::{Arc, OnceLock};

/// The process-wide registry, created on first use. Entry points that
/// aren't handed an explicit [`Telemetry`] (the legacy `run()` /
/// `run_to_dataset()` signatures) record here, so one scrape surface sees
/// the whole process by default.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The telemetry handle a subsystem threads through its layers: an
/// optional metrics registry plus an optional trace sink. Cloning is two
/// `Arc` bumps; every accessor on a disabled handle is a branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<TraceSink>>,
}

impl Telemetry {
    /// No metrics, no tracing: every instrument handed out is a noop.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Record metrics into `registry`.
    pub fn with_metrics(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            metrics: Some(registry),
            trace: None,
        }
    }

    /// Record metrics into the process-wide [`global`] registry.
    pub fn global() -> Self {
        Self::with_metrics(Arc::clone(global()))
    }

    /// Attach a trace sink (builder-style).
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Whether any backend (metrics or trace) is attached.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some()
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// The attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    /// Get-or-create a counter (noop when no registry is attached).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.metrics {
            Some(registry) => registry.counter(name, help, labels),
            None => Counter::noop(),
        }
    }

    /// Get-or-create a gauge (noop when no registry is attached).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.metrics {
            Some(registry) => registry.gauge(name, help, labels),
            None => Gauge::noop(),
        }
    }

    /// Get-or-create a histogram (noop when no registry is attached).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match &self.metrics {
            Some(registry) => registry.histogram(name, help, bounds, labels),
            None => Histogram::noop(),
        }
    }

    /// Emit a trace event (dropped when no sink is attached).
    pub fn emit(&self, kind: &str, name: &str, fields: &[(&str, TraceValue<'_>)]) {
        if let Some(sink) = &self.trace {
            sink.emit(kind, name, fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_hands_out_noops() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        let counter = telemetry.counter("x_total", "x", &[]);
        counter.inc();
        assert_eq!(counter.value(), 0);
        assert!(!telemetry
            .histogram("h", "h", &DEFAULT_LATENCY_BUCKETS, &[])
            .is_active());
        telemetry.emit("stage", "nothing", &[]); // must not panic
    }

    #[test]
    fn enabled_handle_records_into_its_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let telemetry = Telemetry::with_metrics(Arc::clone(&registry));
        assert!(telemetry.is_enabled());
        telemetry.counter("runs_total", "Runs.", &[]).inc();
        assert_eq!(registry.counter("runs_total", "Runs.", &[]).value(), 1);
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(a, b));
        assert!(Telemetry::global().is_enabled());
    }
}
