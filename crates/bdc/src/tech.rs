//! Broadband access technologies as reported in BDC filings.

use serde::{Deserialize, Serialize};

/// Access technology categories used by the BDC, with the FCC's numeric
/// technology codes. The full BDC fixed-broadband code table is carried
/// (0/10/40/50/60/61/70/71/72) so real CSV rows map without a lossy shim;
/// the paper's Table 7 breaks results down by the five terrestrial
/// technologies it models (codes 10/40/50/70/71, see [`Technology::TERRESTRIAL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Technology {
    /// Copper (DSL) — code 10.
    Copper,
    /// Hybrid-fibre coax cable — code 40.
    Cable,
    /// Fibre to the premises — code 50.
    Fiber,
    /// Geostationary satellite — code 60.
    GsoSatellite,
    /// Non-geostationary satellite — code 61.
    NgsoSatellite,
    /// Unlicensed fixed wireless — code 70.
    UnlicensedFixedWireless,
    /// Licensed fixed wireless — code 71.
    LicensedFixedWireless,
    /// Licensed-by-rule fixed wireless (CBRS etc.) — code 72.
    ///
    /// Appended after the original seven so existing claim-key orderings
    /// (which sort by variant position) are untouched.
    LicensedByRuleFixedWireless,
    /// Other technology — code 0.
    Other,
}

impl Technology {
    /// All technology categories.
    pub const ALL: [Technology; 9] = [
        Technology::Copper,
        Technology::Cable,
        Technology::Fiber,
        Technology::GsoSatellite,
        Technology::NgsoSatellite,
        Technology::UnlicensedFixedWireless,
        Technology::LicensedFixedWireless,
        Technology::LicensedByRuleFixedWireless,
        Technology::Other,
    ];

    /// The terrestrial technologies considered by the model (satellite
    /// providers are excluded from the paper's observations, §5.1; the
    /// long-tail codes 72 and 0 are ingested but not modelled in Table 7).
    pub const TERRESTRIAL: [Technology; 5] = [
        Technology::Copper,
        Technology::Cable,
        Technology::Fiber,
        Technology::UnlicensedFixedWireless,
        Technology::LicensedFixedWireless,
    ];

    /// The FCC technology code.
    pub fn code(&self) -> u8 {
        match self {
            Technology::Copper => 10,
            Technology::Cable => 40,
            Technology::Fiber => 50,
            Technology::GsoSatellite => 60,
            Technology::NgsoSatellite => 61,
            Technology::UnlicensedFixedWireless => 70,
            Technology::LicensedFixedWireless => 71,
            Technology::LicensedByRuleFixedWireless => 72,
            Technology::Other => 0,
        }
    }

    /// Look a technology up by its FCC code.
    pub fn from_code(code: u8) -> Option<Technology> {
        Technology::ALL.iter().copied().find(|t| t.code() == code)
    }

    /// True for technologies delivered by terrestrial infrastructure.
    pub fn is_terrestrial(&self) -> bool {
        !matches!(self, Technology::GsoSatellite | Technology::NgsoSatellite)
    }

    /// True for either satellite category. Satellite providers claim service
    /// essentially everywhere, which is why the paper excludes them.
    pub fn is_satellite(&self) -> bool {
        !self.is_terrestrial()
    }

    /// Short label used in tables (matches the paper's Table 7 labels).
    pub fn label(&self) -> &'static str {
        match self {
            Technology::Copper => "Copper (10)",
            Technology::Cable => "Cable (40)",
            Technology::Fiber => "Fiber (50)",
            Technology::GsoSatellite => "GSO Satellite (60)",
            Technology::NgsoSatellite => "NGSO Satellite (61)",
            Technology::UnlicensedFixedWireless => "ULFW (70)",
            Technology::LicensedFixedWireless => "LFW (71)",
            Technology::LicensedByRuleFixedWireless => "LBR FW (72)",
            Technology::Other => "Other (0)",
        }
    }

    /// Typical maximum advertised download speed in Mbps for the technology,
    /// used by the synthetic generator to draw plausible speed tiers.
    pub fn typical_max_down_mbps(&self) -> f64 {
        match self {
            Technology::Copper => 100.0,
            Technology::Cable => 1200.0,
            Technology::Fiber => 5000.0,
            Technology::GsoSatellite => 100.0,
            Technology::NgsoSatellite => 250.0,
            Technology::UnlicensedFixedWireless => 100.0,
            Technology::LicensedFixedWireless => 300.0,
            Technology::LicensedByRuleFixedWireless => 100.0,
            Technology::Other => 50.0,
        }
    }
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for t in Technology::ALL {
            assert_eq!(Technology::from_code(t.code()), Some(t));
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert_eq!(Technology::from_code(99), None);
        assert_eq!(Technology::from_code(1), None);
        assert_eq!(Technology::from_code(73), None);
    }

    #[test]
    fn real_bdc_codes_present() {
        assert_eq!(
            Technology::from_code(72),
            Some(Technology::LicensedByRuleFixedWireless)
        );
        assert_eq!(Technology::from_code(0), Some(Technology::Other));
        assert_eq!(Technology::LicensedByRuleFixedWireless.code(), 72);
        assert_eq!(Technology::Other.code(), 0);
    }

    #[test]
    fn codes_are_distinct() {
        let mut codes: Vec<u8> = Technology::ALL.iter().map(|t| t.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Technology::ALL.len());
    }

    #[test]
    fn terrestrial_partition() {
        let terrestrial: Vec<_> = Technology::ALL
            .iter()
            .filter(|t| t.is_terrestrial())
            .collect();
        // All non-satellite codes are terrestrial (7 of 9); the model's
        // TERRESTRIAL set is the paper's five-technology subset of them.
        assert_eq!(terrestrial.len(), Technology::ALL.len() - 2);
        for t in Technology::TERRESTRIAL {
            assert!(t.is_terrestrial());
        }
        assert!(Technology::GsoSatellite.is_satellite());
        assert!(Technology::NgsoSatellite.is_satellite());
        assert!(Technology::Fiber.is_terrestrial());
        assert!(Technology::LicensedByRuleFixedWireless.is_terrestrial());
        assert!(Technology::Other.is_terrestrial());
    }

    #[test]
    fn labels_contain_codes() {
        assert!(Technology::LicensedFixedWireless.label().contains("71"));
        assert!(Technology::LicensedByRuleFixedWireless
            .label()
            .contains("72"));
        assert!(Technology::Copper.label().contains("10"));
        assert!(Technology::Other.label().contains('0'));
    }

    #[test]
    fn fiber_fastest_typical_speed() {
        let max = Technology::ALL
            .iter()
            .map(|t| t.typical_max_down_mbps())
            .fold(f64::MIN, f64::max);
        assert_eq!(max, Technology::Fiber.typical_max_down_mbps());
    }
}
