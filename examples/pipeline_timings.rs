//! Print the staged pipeline engine's per-stage wall-clock report in both
//! execution modes over a bench-scale world — all eight stages, from
//! provider→ASN matching through label construction and feature engineering.
//!
//! ```sh
//! cargo run --release --example pipeline_timings [seed]
//! ```

use red_is_sus::core::features::FeatureConfig;
use red_is_sus::core::labels::LabelingOptions;
use red_is_sus::core::pipeline::{PipelineEngine, PipelineStage};
use red_is_sus::synth::{SynthConfig, SynthUs};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let world = SynthUs::generate(&SynthConfig::tiny(seed));
    println!(
        "world: {} BSLs, {} providers, {} MLab tests (seed {seed})\n",
        world.fabric.len(),
        world.providers.len(),
        world.mlab.len(),
    );

    for engine in [PipelineEngine::sequential(), PipelineEngine::parallel()] {
        let run = engine.run_to_dataset(
            &world,
            &LabelingOptions::default(),
            &FeatureConfig::default(),
        );
        println!(
            "{:?} execution (executed schedule: {:?}):",
            engine.mode(),
            run.report.executed
        );
        println!(
            "  {:<24} {:>10} {:>14} {:>12}",
            "stage", "wall ms", "peak entries", "~bytes"
        );
        for stage in PipelineStage::ALL {
            let wall = run.report.wall_for(stage).unwrap();
            let (entries, bytes) = run.report.residency_for(stage).unwrap();
            println!(
                "  {:<24} {:>10.3} {:>14} {:>12}",
                stage.name(),
                wall.as_secs_f64() * 1e3,
                entries,
                bytes,
            );
        }
        println!(
            "  {:<24} {:>10.3} ms (stage sum {:.3} ms, peak stage residency {} entries)",
            "total wall",
            run.report.total_wall.as_secs_f64() * 1e3,
            run.report.stage_sum().as_secs_f64() * 1e3,
            run.report.peak_resident_entries(),
        );
        println!(
            "  dataset: {} observations x {} features\n",
            run.matrix.dataset.n_rows(),
            run.matrix.dataset.n_features(),
        );
    }
}
