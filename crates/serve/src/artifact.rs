//! The model artifact format: a versioned, self-describing canonical binary
//! encoding of a trained [`GbdtModel`].
//!
//! The workspace's vendored serde is a compile-only stub, so serialisation is
//! hand-rolled here: one canonical little-endian byte layout, written and
//! read by this module alone. The envelope is
//!
//! ```text
//! ┌──────────┬─────────┬──────────────────────────────┬───────────────┐
//! │ magic 8B │ ver u16 │ payload (params, schema,     │ FNV-1a u64    │
//! │ RSUSGBDT │   = 1   │ base margin, trees)          │ over the rest │
//! └──────────┴─────────┴──────────────────────────────┴───────────────┘
//! ```
//!
//! The trailing fingerprint is FNV-1a over every preceding byte (magic and
//! version included), so any flipped bit anywhere surfaces as a
//! [`ArtifactError::FingerprintMismatch`] before the payload is even parsed;
//! the same value doubles as the artifact's content identity (reported by
//! `/healthz`, the CLI and the export manifest). Malformed inputs —
//! truncated, corrupted, wrong magic, unsupported version, inconsistent tree
//! topology — are rejected with typed [`ArtifactError`]s; decoding never
//! panics.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! params: n_estimators u64, learning_rate f64, max_depth u64, lambda f64,
//!         gamma f64, min_child_weight f64, subsample f64,
//!         colsample_bytree f64, max_bins u64, seed u64,
//!         early_stopping flag u8 + rounds u64
//! base_margin f64
//! n_features u32, then per feature: name_len u32 + UTF-8 bytes
//! n_trees u32, then per tree: n_nodes u32, then per node:
//!   tag u8 = 0 (leaf):  value f64, cover f64
//!   tag u8 = 1 (split): feature u32, threshold f32, default_left u8,
//!                       left u32, right u32, value f64, cover f64
//! ```

use std::fmt;
use std::path::Path;

use ml::tree::Node;
use ml::{GbdtModel, GbdtParams, RegressionTree};

/// The artifact magic bytes.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"RSUSGBDT";

/// The format version this build writes and understands.
pub const ARTIFACT_VERSION: u16 = 1;

/// Envelope overhead: magic + version + trailing fingerprint.
const MIN_LEN: usize = 8 + 2 + 8;

/// Sanity caps rejecting absurd counts before any allocation is attempted.
const MAX_FEATURES: u32 = 1 << 20;
const MAX_NAME_LEN: u32 = 1 << 16;
const MAX_TREES: u32 = 1 << 20;
const MAX_NODES: u32 = 1 << 26;

/// Smallest encoded node: a leaf's tag + value + cover.
const MIN_NODE_BYTES: usize = 1 + 8 + 8;

/// Why an artifact could not be decoded (or written).
#[derive(Debug)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The input ends before the envelope or a payload field is complete.
    Truncated {
        /// Bytes the reader needed next.
        expected: usize,
        /// Bytes actually remaining.
        found: usize,
    },
    /// The first eight bytes are not [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion { found: u16 },
    /// The trailing FNV-1a fingerprint does not match the content.
    FingerprintMismatch { stored: u64, computed: u64 },
    /// The envelope is intact but the payload violates the format
    /// (impossible counts, bad node topology, invalid UTF-8, …).
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Truncated { expected, found } => {
                write!(
                    f,
                    "artifact truncated: needed {expected} bytes, {found} remain"
                )
            }
            ArtifactError::BadMagic => write!(f, "not a redsus model artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported artifact version {found} (this build reads <= {ARTIFACT_VERSION})"
                )
            }
            ArtifactError::FingerprintMismatch { stored, computed } => write!(
                f,
                "artifact fingerprint mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ArtifactError::Corrupt(msg) => write!(f, "artifact corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// FNV-1a over a byte slice — the artifact's content fingerprint. Same
/// constants as `synth::shard::StableHasher`, reimplemented here so the
/// serving layer needs no dependency on the synthetic-world crate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Encode a model into the canonical artifact bytes (envelope included).
pub fn encode_model(model: &GbdtModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.buf.extend_from_slice(&ARTIFACT_MAGIC);
    w.u16(ARTIFACT_VERSION);

    let p = model.params();
    w.u64(p.n_estimators as u64);
    w.f64(p.learning_rate);
    w.u64(p.max_depth as u64);
    w.f64(p.lambda);
    w.f64(p.gamma);
    w.f64(p.min_child_weight);
    w.f64(p.subsample);
    w.f64(p.colsample_bytree);
    w.u64(p.max_bins as u64);
    w.u64(p.seed);
    match p.early_stopping_rounds {
        Some(r) => {
            w.u8(1);
            w.u64(r as u64);
        }
        None => {
            w.u8(0);
            w.u64(0);
        }
    }

    w.f64(model.base_margin());
    w.u32(model.feature_names().len() as u32);
    for name in model.feature_names() {
        w.str(name);
    }

    w.u32(model.n_trees() as u32);
    for tree in model.trees() {
        w.u32(tree.nodes().len() as u32);
        for node in tree.nodes() {
            match node {
                Node::Leaf { value, cover } => {
                    w.u8(0);
                    w.f64(*value);
                    w.f64(*cover);
                }
                Node::Split {
                    feature,
                    threshold,
                    default_left,
                    left,
                    right,
                    value,
                    cover,
                } => {
                    w.u8(1);
                    w.u32(*feature as u32);
                    w.f32(*threshold);
                    w.u8(u8::from(*default_left));
                    w.u32(*left as u32);
                    w.u32(*right as u32);
                    w.f64(*value);
                    w.f64(*cover);
                }
            }
        }
    }

    let fp = fnv1a(&w.buf);
    w.u64(fp);
    w.buf
}

/// The content fingerprint an encoded model would carry, without keeping the
/// bytes around.
pub fn model_fingerprint(model: &GbdtModel) -> u64 {
    let bytes = encode_model(model);
    // The trailer *is* the fingerprint of everything before it.
    u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap())
}

// ---------------------------------------------------------------------------
// Decoding

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Guard a count-prefixed allocation: `count` items of at least
    /// `min_item_bytes` each must still fit in the unread payload, otherwise
    /// the count is a lie and allocating for it up front would let a
    /// tiny crafted artifact demand gigabytes before the first field read
    /// could report truncation.
    fn check_count(&self, count: u32, min_item_bytes: usize) -> Result<(), ArtifactError> {
        let needed = count as usize * min_item_bytes;
        if needed > self.remaining() {
            return Err(ArtifactError::Truncated {
                expected: needed,
                found: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let remaining = self.bytes.len() - self.pos;
        if n > remaining {
            return Err(ArtifactError::Truncated {
                expected: n,
                found: remaining,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self, max_len: u32) -> Result<String, ArtifactError> {
        let len = self.u32()?;
        if len > max_len {
            return Err(ArtifactError::Corrupt(format!(
                "string length {len} exceeds cap {max_len}"
            )));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Corrupt("invalid UTF-8 in string".into()))
    }
    fn flag(&mut self, what: &str) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ArtifactError::Corrupt(format!("{what} flag byte is {v}"))),
        }
    }
}

/// A successfully decoded artifact: the reconstructed model plus the
/// envelope metadata.
#[derive(Debug, Clone)]
pub struct DecodedArtifact {
    /// The model, bit-identical to the one that was encoded.
    pub model: GbdtModel,
    /// The verified content fingerprint (the envelope trailer).
    pub fingerprint: u64,
    /// The format version the artifact was written with.
    pub version: u16,
}

/// Decode artifact bytes, verifying the envelope before parsing the payload.
pub fn decode_model(bytes: &[u8]) -> Result<DecodedArtifact, ArtifactError> {
    if bytes.len() < MIN_LEN {
        return Err(ArtifactError::Truncated {
            expected: MIN_LEN,
            found: bytes.len(),
        });
    }
    if bytes[..8] != ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version == 0 || version > ARTIFACT_VERSION {
        return Err(ArtifactError::UnsupportedVersion { found: version });
    }
    let content = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = fnv1a(content);
    if stored != computed {
        return Err(ArtifactError::FingerprintMismatch { stored, computed });
    }

    let mut r = Reader {
        bytes: content,
        pos: 10,
    };

    let n_estimators = r.u64()? as usize;
    let learning_rate = r.f64()?;
    let max_depth = r.u64()? as usize;
    let lambda = r.f64()?;
    let gamma = r.f64()?;
    let min_child_weight = r.f64()?;
    let subsample = r.f64()?;
    let colsample_bytree = r.f64()?;
    let max_bins = r.u64()? as usize;
    let seed = r.u64()?;
    let has_early = r.flag("early-stopping")?;
    let early_rounds = r.u64()? as usize;
    let params = GbdtParams {
        n_estimators,
        learning_rate,
        max_depth,
        lambda,
        gamma,
        min_child_weight,
        subsample,
        colsample_bytree,
        max_bins,
        seed,
        early_stopping_rounds: has_early.then_some(early_rounds),
    };

    let base_margin = r.f64()?;

    let n_features = r.u32()?;
    if n_features == 0 || n_features > MAX_FEATURES {
        return Err(ArtifactError::Corrupt(format!(
            "feature count {n_features} outside 1..={MAX_FEATURES}"
        )));
    }
    r.check_count(n_features, 4)?; // each name carries at least a u32 length
    let mut feature_names = Vec::with_capacity(n_features as usize);
    for _ in 0..n_features {
        feature_names.push(r.str(MAX_NAME_LEN)?);
    }

    let n_trees = r.u32()?;
    if n_trees > MAX_TREES {
        return Err(ArtifactError::Corrupt(format!(
            "tree count {n_trees} exceeds cap {MAX_TREES}"
        )));
    }
    r.check_count(n_trees, 4 + MIN_NODE_BYTES)?; // node count + one leaf
    let mut trees = Vec::with_capacity(n_trees as usize);
    for t in 0..n_trees {
        let n_nodes = r.u32()?;
        if n_nodes == 0 || n_nodes > MAX_NODES {
            return Err(ArtifactError::Corrupt(format!(
                "tree {t} node count {n_nodes} outside 1..={MAX_NODES}"
            )));
        }
        r.check_count(n_nodes, MIN_NODE_BYTES)?;
        let mut nodes = Vec::with_capacity(n_nodes as usize);
        for i in 0..n_nodes {
            let node = match r.u8()? {
                0 => {
                    let value = r.f64()?;
                    let cover = r.f64()?;
                    Node::Leaf { value, cover }
                }
                1 => {
                    let feature = r.u32()?;
                    let threshold = r.f32()?;
                    let default_left = r.flag("default-direction")?;
                    let left = r.u32()?;
                    let right = r.u32()?;
                    let value = r.f64()?;
                    let cover = r.f64()?;
                    if feature >= n_features {
                        return Err(ArtifactError::Corrupt(format!(
                            "tree {t} node {i} splits on feature {feature} of {n_features}"
                        )));
                    }
                    // Children must point strictly forward within the tree:
                    // in range, and after the parent — which both rules out
                    // cycles (traversal indices strictly increase) and
                    // matches how the training-time builder lays nodes out.
                    if left <= i || left >= n_nodes || right <= i || right >= n_nodes {
                        return Err(ArtifactError::Corrupt(format!(
                            "tree {t} node {i} children ({left}, {right}) not strictly forward in {n_nodes} nodes"
                        )));
                    }
                    Node::Split {
                        feature: feature as usize,
                        threshold,
                        default_left,
                        left: left as usize,
                        right: right as usize,
                        value,
                        cover,
                    }
                }
                tag => {
                    return Err(ArtifactError::Corrupt(format!(
                        "tree {t} node {i} has unknown tag {tag}"
                    )))
                }
            };
            nodes.push(node);
        }
        trees.push(RegressionTree::from_nodes(nodes));
    }

    if r.pos != content.len() {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing payload bytes after the last tree",
            content.len() - r.pos
        )));
    }

    Ok(DecodedArtifact {
        model: GbdtModel::from_parts(params, base_margin, trees, feature_names),
        fingerprint: stored,
        version,
    })
}

/// Write a model artifact to a file, returning its content fingerprint.
pub fn write_artifact(path: impl AsRef<Path>, model: &GbdtModel) -> Result<u64, ArtifactError> {
    let bytes = encode_model(model);
    let fp = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    std::fs::write(path, &bytes)?;
    Ok(fp)
}

/// Read and decode a model artifact from a file.
pub fn read_artifact(path: impl AsRef<Path>) -> Result<DecodedArtifact, ArtifactError> {
    let bytes = std::fs::read(path)?;
    decode_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> GbdtModel {
        let mut d = ml::Dataset::new(vec!["x".into(), "y".into()]);
        for i in 0..60 {
            let x = i as f32 / 60.0;
            d.push_row(&[x, (i % 5) as f32], if x > 0.5 { 1.0 } else { 0.0 });
        }
        GbdtModel::fit(
            &d,
            GbdtParams {
                n_estimators: 4,
                max_depth: 3,
                ..GbdtParams::default()
            },
        )
    }

    #[test]
    fn round_trip_is_lossless() {
        let model = tiny_model();
        let bytes = encode_model(&model);
        let decoded = decode_model(&bytes).expect("decode");
        assert_eq!(decoded.version, ARTIFACT_VERSION);
        assert_eq!(decoded.fingerprint, model_fingerprint(&model));
        assert_eq!(decoded.model.feature_names(), model.feature_names());
        assert_eq!(decoded.model.n_trees(), model.n_trees());
        assert_eq!(
            decoded.model.base_margin().to_bits(),
            model.base_margin().to_bits()
        );
        // Re-encoding the decoded model reproduces the exact bytes.
        assert_eq!(encode_model(&decoded.model), bytes);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_model(&tiny_model());
        bytes[0] ^= 0xff;
        assert!(matches!(decode_model(&bytes), Err(ArtifactError::BadMagic)));
    }

    #[test]
    fn short_input_is_truncated_not_a_panic() {
        for len in 0..MIN_LEN {
            let bytes = vec![0u8; len];
            assert!(matches!(
                decode_model(&bytes),
                Err(ArtifactError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn version_from_the_future_is_rejected() {
        let mut bytes = encode_model(&tiny_model());
        bytes[8..10].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        // Re-seal so the version check (not the fingerprint) is what fires.
        let fp = fnv1a(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&fp.to_le_bytes());
        assert!(matches!(
            decode_model(&bytes),
            Err(ArtifactError::UnsupportedVersion {
                found
            }) if found == ARTIFACT_VERSION + 1
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_the_fingerprint() {
        let mut bytes = encode_model(&tiny_model());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            decode_model(&bytes),
            Err(ArtifactError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn forged_topology_is_corrupt_not_a_panic() {
        let model = tiny_model();
        // Re-encode with a split whose child points backwards, re-sealed so
        // only the topology check can reject it.
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&ARTIFACT_MAGIC);
        w.u16(ARTIFACT_VERSION);
        let p = model.params();
        w.u64(p.n_estimators as u64);
        w.f64(p.learning_rate);
        w.u64(p.max_depth as u64);
        w.f64(p.lambda);
        w.f64(p.gamma);
        w.f64(p.min_child_weight);
        w.f64(p.subsample);
        w.f64(p.colsample_bytree);
        w.u64(p.max_bins as u64);
        w.u64(p.seed);
        w.u8(0);
        w.u64(0);
        w.f64(model.base_margin());
        w.u32(1);
        w.str("x");
        w.u32(1); // one tree
        w.u32(2); // two nodes
        w.u8(1); // split whose children point at itself / backwards
        w.u32(0); // feature
        w.f32(0.5);
        w.u8(0);
        w.u32(0); // left <= index: invalid
        w.u32(1);
        w.f64(0.0);
        w.f64(1.0);
        w.u8(0); // leaf
        w.f64(0.1);
        w.f64(1.0);
        let fp = fnv1a(&w.buf);
        w.u64(fp);
        assert!(matches!(
            decode_model(&w.buf),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    /// A tiny artifact whose counts claim gigabytes of payload must be
    /// rejected by the count-vs-remaining-bytes guard before any allocation
    /// is sized from the lie (a resealed fingerprint gets it past the
    /// envelope, so the guard is the only thing standing).
    #[test]
    fn lying_counts_are_rejected_before_allocation() {
        let model = tiny_model();
        let write_prefix = |f: &dyn Fn(&mut ByteWriter)| -> Vec<u8> {
            let mut w = ByteWriter::new();
            w.buf.extend_from_slice(&ARTIFACT_MAGIC);
            w.u16(ARTIFACT_VERSION);
            let p = model.params();
            w.u64(p.n_estimators as u64);
            w.f64(p.learning_rate);
            w.u64(p.max_depth as u64);
            w.f64(p.lambda);
            w.f64(p.gamma);
            w.f64(p.min_child_weight);
            w.f64(p.subsample);
            w.f64(p.colsample_bytree);
            w.u64(p.max_bins as u64);
            w.u64(p.seed);
            w.u8(0);
            w.u64(0);
            w.f64(model.base_margin());
            f(&mut w);
            let fp = fnv1a(&w.buf);
            w.u64(fp);
            w.buf
        };
        // One tree claiming the maximum node count with an empty body.
        let huge_nodes = write_prefix(&|w: &mut ByteWriter| {
            w.u32(1);
            w.str("x");
            w.u32(1);
            w.u32(MAX_NODES);
        });
        assert!(huge_nodes.len() < 256, "the attack must be tiny");
        assert!(matches!(
            decode_model(&huge_nodes),
            Err(ArtifactError::Truncated { .. })
        ));
        // A feature count with no names behind it.
        let huge_features = write_prefix(&|w: &mut ByteWriter| {
            w.u32(MAX_FEATURES);
        });
        assert!(matches!(
            decode_model(&huge_features),
            Err(ArtifactError::Truncated { .. })
        ));
        // A tree count with no trees behind it.
        let huge_trees = write_prefix(&|w: &mut ByteWriter| {
            w.u32(1);
            w.str("x");
            w.u32(MAX_TREES);
        });
        assert!(matches!(
            decode_model(&huge_trees),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let model = tiny_model();
        let path =
            std::env::temp_dir().join(format!("redsus_artifact_test_{}.rsm", std::process::id()));
        let fp = write_artifact(&path, &model).expect("write");
        let decoded = read_artifact(&path).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(decoded.fingerprint, fp);
        assert_eq!(decoded.model.n_trees(), model.n_trees());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_artifact("/nonexistent/redsus.rsm").unwrap_err();
        assert!(matches!(err, ArtifactError::Io(_)));
        assert!(!err.to_string().is_empty());
    }
}
