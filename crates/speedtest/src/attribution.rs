//! Attributing and localising MLab tests to providers (§4.2.2).
//!
//! Each usable MLab test carries an ASN and an IP-geolocation disc. Given the
//! provider→ASN mapping produced by the `asnmap` matcher and each provider's
//! claimed footprint in the NBM, a test contributes evidence to every hex that
//! is (a) within the geolocation disc and (b) claimed by the provider the
//! test's ASN belongs to.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bdc::{Asn, ProviderId};
use hexgrid::{HexCell, Resolution};
use serde::{Deserialize, Serialize};

use crate::mlab::MlabDataset;

/// Per-provider, per-hex MLab evidence: how many usable tests could have been
/// run from each hex of the provider's claimed footprint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProviderHexTests {
    counts: HashMap<(ProviderId, HexCell), f64>,
}

impl ProviderHexTests {
    /// Test count attributed to a provider in a hex (0 when none).
    pub fn count(&self, provider: ProviderId, hex: HexCell) -> f64 {
        *self.counts.get(&(provider, hex)).unwrap_or(&0.0)
    }

    /// All hexes with attributed tests for a provider.
    pub fn hexes_for(&self, provider: ProviderId) -> BTreeSet<HexCell> {
        self.counts
            .keys()
            .filter(|(p, _)| *p == provider)
            .map(|(_, h)| *h)
            .collect()
    }

    /// Total number of (provider, hex) pairs with evidence.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no tests were attributed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total attributed test mass for a provider.
    pub fn total_for(&self, provider: ProviderId) -> f64 {
        self.counts
            .iter()
            .filter(|((p, _), _)| *p == provider)
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterate over all `(provider, hex, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (ProviderId, HexCell, f64)> + '_ {
        self.counts.iter().map(|((p, h), c)| (*p, *h, *c))
    }
}

/// The hexes a test could have been run from: every cell whose centroid lies
/// within the geolocation accuracy radius of the test's centre (plus the
/// centre cell itself).
pub fn candidate_hexes(
    center: &geoprim::LatLng,
    accuracy_radius_km: f64,
    res: Resolution,
) -> Vec<HexCell> {
    let center_cell = HexCell::containing(center, res);
    // One grid step moves roughly sqrt(3) * circumradius between centroids.
    let step_km = res.hex_size_km() * 3.0_f64.sqrt();
    let k = (accuracy_radius_km / step_km).ceil().max(0.0) as usize;
    center_cell
        .grid_disk(k)
        .into_iter()
        .filter(|cell| {
            cell == &center_cell || cell.center().haversine_km(center) <= accuracy_radius_km
        })
        .collect()
}

/// Tests-per-run below which the parallel path is not worth the thread-spawn
/// overhead. Both paths produce bit-identical results (see module tests).
const PARALLEL_MIN_TESTS: usize = 512;

/// Tests per block in the threaded path: candidate-hex vectors are only ever
/// materialised for one block at a time, bounding peak memory at
/// `O(TEST_BLOCK × hexes-per-radius)` regardless of dataset size.
const TEST_BLOCK: usize = 4096;

/// Fold one test's surviving candidate hexes into a provider's counts: the
/// single accumulation step shared by the streaming and threaded paths (so
/// the two cannot drift apart and break their bit-identical contract).
fn accumulate_test(
    provider: ProviderId,
    footprint: &BTreeSet<HexCell>,
    candidates: &[HexCell],
    counts: &mut HashMap<(ProviderId, HexCell), f64>,
) {
    let localized: Vec<&HexCell> = candidates
        .iter()
        .filter(|h| footprint.contains(h))
        .collect();
    if localized.is_empty() {
        return;
    }
    let share = 1.0 / localized.len() as f64;
    for hex in localized {
        *counts.entry((provider, *hex)).or_insert(0.0) += share;
    }
}

/// Incremental MLab attribution for streaming pipelines: tests are fed in
/// dataset order, batch by batch, and accumulate into the same per-(provider,
/// hex) counts the batch [`attribute_mlab_tests`] produces. Because every
/// count accumulates in ascending test order through the shared
/// [`accumulate_test`] step, feeding the full dataset through any batch split
/// is bit-identical to the batch path — the contract the national-scale
/// streaming world relies on when it drains per-provider test shards without
/// ever materialising the dataset.
pub struct MlabAttributor<'a> {
    asn_to_providers: BTreeMap<Asn, Vec<ProviderId>>,
    claimed_hexes: &'a BTreeMap<ProviderId, BTreeSet<HexCell>>,
    res: Resolution,
    counts: HashMap<(ProviderId, HexCell), f64>,
}

impl<'a> MlabAttributor<'a> {
    /// Set up an attributor over a provider→ASN mapping and per-provider
    /// claimed footprints (the same inputs as [`attribute_mlab_tests`]).
    pub fn new(
        provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
        claimed_hexes: &'a BTreeMap<ProviderId, BTreeSet<HexCell>>,
        res: Resolution,
    ) -> Self {
        let mut asn_to_providers: BTreeMap<Asn, Vec<ProviderId>> = BTreeMap::new();
        for (provider, asns) in provider_asns {
            for asn in asns {
                asn_to_providers.entry(*asn).or_default().push(*provider);
            }
        }
        Self {
            asn_to_providers,
            claimed_hexes,
            res,
            counts: HashMap::new(),
        }
    }

    /// Fold one test in: unusable or unmapped tests are skipped exactly as
    /// the batch path skips them.
    pub fn add_test(&mut self, test: &crate::mlab::MlabTest) {
        if !test.usable() {
            return;
        }
        let Some(providers) = self.asn_to_providers.get(&test.asn) else {
            return;
        };
        let candidates = candidate_hexes(&test.geo_center, test.accuracy_radius_km, self.res);
        for provider in providers {
            if let Some(footprint) = self.claimed_hexes.get(provider) {
                accumulate_test(*provider, footprint, &candidates, &mut self.counts);
            }
        }
    }

    /// Fold a batch of tests in, in order.
    pub fn add_tests(&mut self, tests: &[crate::mlab::MlabTest]) {
        for test in tests {
            self.add_test(test);
        }
    }

    /// The accumulated evidence.
    pub fn finish(self) -> ProviderHexTests {
        ProviderHexTests {
            counts: self.counts,
        }
    }
}

/// Attribute every usable MLab test to providers and localise it to hexes.
///
/// * `provider_asns` — the provider→ASN mapping from the `asnmap` matcher.
/// * `claimed_hexes` — each provider's claimed footprint in the NBM.
///
/// A test whose ASN maps to several providers contributes to each of them (the
/// paper notes shared ASNs are usually corporate siblings or wholesale
/// transit). Tests are split evenly across the candidate hexes that survive
/// the footprint intersection so that each test contributes one unit of mass.
///
/// For large inputs the two hot phases — per-test candidate-hex geometry and
/// per-provider footprint intersection/accumulation — run on scoped threads,
/// streaming tests through in bounded blocks so candidate geometry for only
/// one block is ever held in memory. Each (provider, hex) count is
/// accumulated by exactly one worker in ascending test order, so the result
/// is bit-identical to the sequential path regardless of thread scheduling.
pub fn attribute_mlab_tests(
    mlab: &MlabDataset,
    provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
    claimed_hexes: &BTreeMap<ProviderId, BTreeSet<HexCell>>,
    res: Resolution,
) -> ProviderHexTests {
    attribute_mlab_tests_with_threads(mlab, provider_asns, claimed_hexes, res, None)
}

/// Implementation with an explicit thread override (`None` = auto: threads
/// only for large inputs on multicore hosts). Tests force a thread count to
/// exercise the parallel path on any machine.
fn attribute_mlab_tests_with_threads(
    mlab: &MlabDataset,
    provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
    claimed_hexes: &BTreeMap<ProviderId, BTreeSet<HexCell>>,
    res: Resolution,
    force_threads: Option<usize>,
) -> ProviderHexTests {
    // Invert the provider→ASN map for lookup by test ASN.
    let mut asn_to_providers: BTreeMap<Asn, Vec<ProviderId>> = BTreeMap::new();
    for (provider, asns) in provider_asns {
        for asn in asns {
            asn_to_providers.entry(*asn).or_default().push(*provider);
        }
    }

    // Keep only tests whose ASN maps to at least one provider; everything
    // downstream is indexed by position in this vector.
    let tests: Vec<&crate::mlab::MlabTest> = mlab
        .usable_tests()
        .filter(|t| asn_to_providers.contains_key(&t.asn))
        .collect();

    let n_threads = force_threads.unwrap_or_else(|| {
        if tests.len() >= PARALLEL_MIN_TESTS {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            1
        }
    });

    // Single-threaded: stream one test's candidate hexes at a time (O(1 test)
    // peak memory). Per (provider, hex) the accumulation order is ascending
    // test index — the same as the threaded path, so results are
    // bit-identical.
    if n_threads <= 1 {
        let mut out = ProviderHexTests::default();
        for test in &tests {
            let candidates = candidate_hexes(&test.geo_center, test.accuracy_radius_km, res);
            for provider in &asn_to_providers[&test.asn] {
                if let Some(footprint) = claimed_hexes.get(provider) {
                    accumulate_test(*provider, footprint, &candidates, &mut out.counts);
                }
            }
        }
        return out;
    }

    // Threaded path. Each (provider, hex) key is owned by exactly one worker
    // (providers are assigned to workers round-robin), and tests stream
    // through in blocks of TEST_BLOCK in ascending order, so every count
    // accumulates in ascending test order — bit-identical to the streaming
    // path — while candidate hexes are only materialised one block at a time.
    let owner: HashMap<ProviderId, usize> = provider_asns
        .keys()
        .enumerate()
        .map(|(i, p)| (*p, i % n_threads))
        .collect();
    let mut worker_counts: Vec<HashMap<(ProviderId, HexCell), f64>> =
        (0..n_threads).map(|_| HashMap::new()).collect();

    for block in tests.chunks(TEST_BLOCK) {
        // Phase 1: candidate hexes for this block — pure geometry, parallel
        // over sub-chunks, reassembled in test order.
        let chunk_size = block.len().div_ceil(n_threads).max(1);
        let candidates: Vec<Vec<HexCell>> = std::thread::scope(|scope| {
            let handles: Vec<_> = block
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|t| candidate_hexes(&t.geo_center, t.accuracy_radius_km, res))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("candidate-hex worker panicked"))
                .collect()
        });

        // Phase 2: every worker scans the block but only accumulates the
        // providers it owns.
        std::thread::scope(|scope| {
            for (worker_id, counts) in worker_counts.iter_mut().enumerate() {
                let candidates = &candidates;
                let asn_to_providers = &asn_to_providers;
                let owner = &owner;
                scope.spawn(move || {
                    for (i, test) in block.iter().enumerate() {
                        for provider in &asn_to_providers[&test.asn] {
                            if owner[provider] != worker_id {
                                continue;
                            }
                            if let Some(footprint) = claimed_hexes.get(provider) {
                                accumulate_test(*provider, footprint, &candidates[i], counts);
                            }
                        }
                    }
                });
            }
        });
    }

    let mut out = ProviderHexTests::default();
    for counts in worker_counts {
        out.counts.extend(counts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlab::MlabTest;
    use bdc::DayStamp;
    use geoprim::LatLng;
    use hexgrid::NBM_RESOLUTION;

    fn center() -> LatLng {
        LatLng::new(37.2296, -80.4139)
    }

    fn test_at(asn: u32, center: LatLng, radius: f64) -> MlabTest {
        MlabTest {
            asn: Asn(asn),
            download_mbps: 100.0,
            upload_mbps: 10.0,
            latency_ms: 20.0,
            geo_center: center,
            accuracy_radius_km: radius,
            day: DayStamp::from_ymd(2022, 3, 1),
        }
    }

    #[test]
    fn candidate_hexes_grow_with_radius() {
        let small = candidate_hexes(&center(), 1.0, NBM_RESOLUTION);
        let large = candidate_hexes(&center(), 10.0, NBM_RESOLUTION);
        assert!(!small.is_empty());
        assert!(large.len() > small.len());
        let center_cell = HexCell::containing(&center(), NBM_RESOLUTION);
        assert!(small.contains(&center_cell));
        assert!(large.contains(&center_cell));
    }

    #[test]
    fn zero_radius_still_returns_center_cell() {
        let cells = candidate_hexes(&center(), 0.0, NBM_RESOLUTION);
        assert_eq!(cells, vec![HexCell::containing(&center(), NBM_RESOLUTION)]);
    }

    fn maps(
        provider: u32,
        asn: u32,
        footprint: BTreeSet<HexCell>,
    ) -> (
        BTreeMap<ProviderId, BTreeSet<Asn>>,
        BTreeMap<ProviderId, BTreeSet<HexCell>>,
    ) {
        let mut pa = BTreeMap::new();
        pa.insert(ProviderId(provider), BTreeSet::from([Asn(asn)]));
        let mut ch = BTreeMap::new();
        ch.insert(ProviderId(provider), footprint);
        (pa, ch)
    }

    #[test]
    fn test_attributed_to_claimed_footprint_only() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint.clone());
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(!attributed.is_empty());
        // Every attributed hex is inside the claimed footprint.
        for hex in attributed.hexes_for(ProviderId(1)) {
            assert!(footprint.contains(&hex));
        }
        // The test contributes exactly one unit of mass in total.
        assert!((attributed.total_for(ProviderId(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unusable_or_unmapped_tests_are_ignored() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint);
        let mlab = MlabDataset::new(vec![
            test_at(64500, center(), 50.0), // radius too large
            test_at(99999, center(), 5.0),  // unmapped ASN
        ]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.is_empty());
        assert_eq!(
            attributed.count(
                ProviderId(1),
                HexCell::containing(&center(), NBM_RESOLUTION)
            ),
            0.0
        );
    }

    #[test]
    fn test_outside_footprint_contributes_nothing() {
        // Footprint far away from the test's geolocation disc.
        let far = LatLng::new(45.0, -93.0);
        let footprint: BTreeSet<HexCell> = candidate_hexes(&far, 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let (pa, ch) = maps(1, 64500, footprint);
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.is_empty());
    }

    /// The pre-parallelism algorithm, kept verbatim as the reference:
    /// iterate tests outermost, providers innermost.
    fn attribute_reference(
        mlab: &MlabDataset,
        provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
        claimed_hexes: &BTreeMap<ProviderId, BTreeSet<HexCell>>,
        res: Resolution,
    ) -> ProviderHexTests {
        let mut asn_to_providers: BTreeMap<Asn, Vec<ProviderId>> = BTreeMap::new();
        for (provider, asns) in provider_asns {
            for asn in asns {
                asn_to_providers.entry(*asn).or_default().push(*provider);
            }
        }
        let mut out = ProviderHexTests::default();
        for test in mlab.usable_tests() {
            let Some(providers) = asn_to_providers.get(&test.asn) else {
                continue;
            };
            let candidates = candidate_hexes(&test.geo_center, test.accuracy_radius_km, res);
            for provider in providers {
                let Some(footprint) = claimed_hexes.get(provider) else {
                    continue;
                };
                let localized: Vec<&HexCell> = candidates
                    .iter()
                    .filter(|h| footprint.contains(h))
                    .collect();
                if localized.is_empty() {
                    continue;
                }
                let share = 1.0 / localized.len() as f64;
                for hex in localized {
                    *out.counts.entry((*provider, *hex)).or_insert(0.0) += share;
                }
            }
        }
        out
    }

    /// Above `PARALLEL_MIN_TESTS` the threaded path engages; its output must
    /// be bit-identical to the sequential reference algorithm.
    #[test]
    fn parallel_path_matches_sequential_reference() {
        let mut pa: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        let mut ch: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
        let mut tests = Vec::new();
        // Six providers on three shared ASNs, footprints at staggered offsets,
        // ~200 tests per ASN with varying radii => > PARALLEL_MIN_TESTS tests.
        for p in 0..6u32 {
            let asn = 64500 + p % 3;
            let c = LatLng::new(37.0 + p as f64 * 0.05, -80.4 - p as f64 * 0.03);
            pa.insert(ProviderId(p), BTreeSet::from([Asn(asn)]));
            ch.insert(
                ProviderId(p),
                candidate_hexes(&c, 4.0, NBM_RESOLUTION)
                    .into_iter()
                    .collect(),
            );
        }
        for i in 0..(super::PARALLEL_MIN_TESTS + 100) {
            let asn = 64500 + (i as u32) % 3;
            let c = LatLng::new(37.0 + (i % 7) as f64 * 0.04, -80.4 - (i % 5) as f64 * 0.025);
            tests.push(test_at(asn, c, 1.0 + (i % 9) as f64));
        }
        let mlab = MlabDataset::new(tests);
        assert!(mlab.usable_tests().count() >= super::PARALLEL_MIN_TESTS);

        let reference = attribute_reference(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(!reference.is_empty());
        // The public auto path, plus forced thread counts so the scoped-thread
        // code runs even on single-core hosts.
        let auto = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        let forced = [1, 2, 4, 7].map(|n| {
            super::attribute_mlab_tests_with_threads(&mlab, &pa, &ch, NBM_RESOLUTION, Some(n))
        });
        for fast in forced.iter().chain([&auto]) {
            assert_eq!(fast.len(), reference.len());
            for (p, hex, count) in reference.iter() {
                assert_eq!(
                    fast.count(p, hex).to_bits(),
                    count.to_bits(),
                    "count mismatch for provider {p:?} hex {hex:?}"
                );
            }
        }
    }

    /// Workloads spanning several `TEST_BLOCK`s must accumulate identically
    /// to the streaming reference across block boundaries.
    #[test]
    fn threaded_blocks_accumulate_across_boundaries() {
        let mut pa: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        let mut ch: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
        for p in 0..3u32 {
            let c = LatLng::new(37.0 + p as f64 * 0.02, -80.4);
            pa.insert(ProviderId(p), BTreeSet::from([Asn(64500 + p)]));
            ch.insert(
                ProviderId(p),
                candidate_hexes(&c, 3.0, NBM_RESOLUTION)
                    .into_iter()
                    .collect(),
            );
        }
        let n = 2 * super::TEST_BLOCK + 123;
        let tests: Vec<MlabTest> = (0..n)
            .map(|i| {
                let c = LatLng::new(37.0 + (i % 5) as f64 * 0.01, -80.4 - (i % 3) as f64 * 0.01);
                test_at(64500 + (i as u32) % 3, c, 1.0)
            })
            .collect();
        let mlab = MlabDataset::new(tests);
        let threaded =
            super::attribute_mlab_tests_with_threads(&mlab, &pa, &ch, NBM_RESOLUTION, Some(3));
        let reference = attribute_reference(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(!threaded.is_empty());
        assert_eq!(threaded.len(), reference.len());
        for (p, hex, count) in reference.iter() {
            assert_eq!(threaded.count(p, hex).to_bits(), count.to_bits());
        }
    }

    /// The incremental attributor fed in dataset order — under any batch
    /// split — must reproduce the batch path bit for bit.
    #[test]
    fn incremental_attributor_matches_batch_path() {
        let mut pa: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        let mut ch: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
        for p in 0..5u32 {
            let asn = 64500 + p % 2;
            let c = LatLng::new(37.0 + p as f64 * 0.04, -80.4 - p as f64 * 0.02);
            pa.insert(ProviderId(p), BTreeSet::from([Asn(asn)]));
            ch.insert(
                ProviderId(p),
                candidate_hexes(&c, 4.0, NBM_RESOLUTION)
                    .into_iter()
                    .collect(),
            );
        }
        let tests: Vec<MlabTest> = (0..700)
            .map(|i| {
                let c = LatLng::new(37.0 + (i % 6) as f64 * 0.03, -80.4 - (i % 4) as f64 * 0.02);
                // Interleave an unusable test to exercise the filter.
                let radius = if i % 50 == 0 {
                    100.0
                } else {
                    1.0 + (i % 7) as f64
                };
                test_at(64500 + (i as u32) % 2, c, radius)
            })
            .collect();
        let mlab = MlabDataset::new(tests.clone());
        let batch = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(!batch.is_empty());
        for split in [1usize, 7, 128, 4096] {
            let mut inc = MlabAttributor::new(&pa, &ch, NBM_RESOLUTION);
            for chunk in tests.chunks(split) {
                inc.add_tests(chunk);
            }
            let streamed = inc.finish();
            assert_eq!(streamed.len(), batch.len(), "split {split}");
            for (p, hex, count) in batch.iter() {
                assert_eq!(
                    streamed.count(p, hex).to_bits(),
                    count.to_bits(),
                    "split {split}: provider {p:?} hex {hex:?}"
                );
            }
        }
    }

    #[test]
    fn shared_asn_contributes_to_both_providers() {
        let footprint: BTreeSet<HexCell> = candidate_hexes(&center(), 2.0, NBM_RESOLUTION)
            .into_iter()
            .collect();
        let mut pa: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        pa.insert(ProviderId(1), BTreeSet::from([Asn(64500)]));
        pa.insert(ProviderId(2), BTreeSet::from([Asn(64500)]));
        let mut ch: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
        ch.insert(ProviderId(1), footprint.clone());
        ch.insert(ProviderId(2), footprint);
        let mlab = MlabDataset::new(vec![test_at(64500, center(), 5.0)]);
        let attributed = attribute_mlab_tests(&mlab, &pa, &ch, NBM_RESOLUTION);
        assert!(attributed.total_for(ProviderId(1)) > 0.0);
        assert!(attributed.total_for(ProviderId(2)) > 0.0);
    }
}
