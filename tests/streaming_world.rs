//! Stream ≡ materialised: the national-scale streaming path must reproduce
//! the materialised world, labels and dataset byte for byte, on every
//! schedule.
//!
//! `StreamWorld` regenerates fabric/claim/speed-test shards on demand from
//! per-`(seed, stage, shard)` RNG streams instead of holding a `SynthUs` in
//! memory; these tests pin that the two paths cannot drift — the same
//! worker-invariance contract `GenMode` pins for the materialised generator,
//! extended across the whole synth → dataset run.

use red_is_sus::core::features::{dataset_fingerprint, FeatureConfig};
use red_is_sus::core::labels::{observations_fingerprint, LabelingOptions};
use red_is_sus::core::pipeline::PipelineEngine;
use red_is_sus::core::streaming::run_synth_streaming_to_dataset;
use red_is_sus::synth::{GenMode, StreamWorld, SynthConfig, SynthUs};

/// The two scales the contract is pinned at: the unit-test world and the
/// benchmark harness's experiment world.
fn configs() -> [(&'static str, SynthConfig); 2] {
    [
        ("tiny", SynthConfig::tiny(123)),
        ("experiment", SynthConfig::experiment(123)),
    ]
}

#[test]
fn streamed_world_matches_materialised_on_every_schedule() {
    for (name, config) in configs() {
        let world = SynthUs::generate(&config);
        let reference = world.initial_release();
        for mode in [GenMode::Sequential, GenMode::Parallel, GenMode::Threads(3)] {
            let streamed = StreamWorld::generate(&config, mode)
                .unwrap_or_else(|e| panic!("{name} under {mode:?}: {e}"));
            assert_eq!(
                streamed.initial_release.hex_claims(),
                reference.hex_claims(),
                "{name}: streamed hex claims differ under {mode:?}"
            );
            assert_eq!(
                streamed.challenges, world.challenges,
                "{name}: streamed challenge wave differs under {mode:?}"
            );
            assert_eq!(
                streamed.later_challenges, world.later_challenges,
                "{name}: streamed later wave differs under {mode:?}"
            );
        }
    }
}

#[test]
fn streamed_dataset_matches_materialised_on_every_schedule() {
    let options = LabelingOptions::default();
    let features = FeatureConfig::default();
    for (name, config) in configs() {
        let world = SynthUs::generate(&config);
        let materialised = PipelineEngine::sequential().run_to_dataset(&world, &options, &features);
        let want_labels = observations_fingerprint(&materialised.matrix.observations);
        let want_dataset = dataset_fingerprint(&materialised.matrix.dataset);
        for mode in [GenMode::Sequential, GenMode::Parallel, GenMode::Threads(3)] {
            let streamed = run_synth_streaming_to_dataset(&config, &options, &features, mode)
                .unwrap_or_else(|e| panic!("{name} under {mode:?}: {e}"));
            assert_eq!(
                observations_fingerprint(&streamed.matrix.observations),
                want_labels,
                "{name}: streamed labels differ under {mode:?}"
            );
            assert_eq!(
                dataset_fingerprint(&streamed.matrix.dataset),
                want_dataset,
                "{name}: streamed dataset differs under {mode:?}"
            );
            // The report covers both halves of the run and the peak is real.
            assert!(streamed.report.stage("fabric_hex_table").is_some());
            assert!(streamed.report.stage("feature_engineering").is_some());
            assert!(streamed.report.peak_resident_entries > 0);
        }
    }
}

#[test]
fn scaled_national_preset_runs_inside_its_budget() {
    // The CI smoke scale: the national preset shrunk far enough to run in a
    // test, with the budget shrunk the same way — so the budget enforcement
    // machinery is exercised on every `cargo test`, not just in CI.
    let config = SynthConfig::national_scaled(7, 4096);
    let run = run_synth_streaming_to_dataset(
        &config,
        &LabelingOptions::default(),
        &FeatureConfig::default(),
        GenMode::Parallel,
    )
    .expect("scaled national run must fit its scaled budget");
    let budget = run.report.budget.expect("national presets set a budget");
    assert!(
        run.report.peak_resident_entries <= budget,
        "peak {} exceeds budget {}",
        run.report.peak_resident_entries,
        budget
    );
    assert!(run.matrix.dataset.n_rows() > 0);
}
