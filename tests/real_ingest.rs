//! Fixture-backed ingest end to end: the committed `bdc_sample` directory
//! must drive the *generic* streaming runner to a pinned golden dataset
//! fingerprint under every worker schedule, every malformed input must
//! surface as its typed error, and the CSV-backed claim stream's
//! `resident_entries` must report what it actually buffers.

use std::path::PathBuf;

use red_is_sus::bdc::{DiffMode, ShardStream};
use red_is_sus::core::features::{dataset_fingerprint, FeatureConfig};
use red_is_sus::core::labels::{observations_fingerprint, LabelingOptions};
use red_is_sus::core::streaming::run_streaming_to_dataset;
use red_is_sus::ingest::{
    AvailabilityReader, AvailabilityShards, FileWorld, IngestError, IngestOptions, OoklaReader,
};

/// Golden fingerprints of the fixture dataset. Regenerating the fixture
/// (`cargo run --example gen_bdc_fixture`) must reproduce these; any change
/// to the readers, the diff engine, the labeling or the feature pipeline
/// that moves them is a behavioural change and must be deliberate.
const GOLDEN_OBSERVATIONS: u64 = 10629759234477136134;
const GOLDEN_DATASET: u64 = 8071669609367832769;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bdc_sample")
}

fn load(options: &IngestOptions, mode: DiffMode) -> FileWorld {
    FileWorld::load(&fixture_dir(), options, mode)
        .unwrap_or_else(|e| panic!("fixture must load: {e}"))
}

#[test]
fn fixture_dataset_fingerprint_is_pinned_on_every_schedule() {
    for mode in [
        DiffMode::Sequential,
        DiffMode::Parallel,
        DiffMode::Threads(3),
    ] {
        let world = load(&IngestOptions::default(), mode);
        let run = run_streaming_to_dataset(
            world,
            &LabelingOptions::default(),
            &FeatureConfig::default(),
            mode,
        )
        .unwrap_or_else(|e| panic!("fixture run under {mode:?}: {e}"));
        assert_eq!(
            observations_fingerprint(&run.matrix.observations),
            GOLDEN_OBSERVATIONS,
            "observations fingerprint drifted under {mode:?}"
        );
        assert_eq!(
            dataset_fingerprint(&run.matrix.dataset),
            GOLDEN_DATASET,
            "dataset fingerprint drifted under {mode:?}"
        );
        // The report stitches the ingest half in front of the runner half.
        assert!(run.report.stage("availability_ingest").is_some());
        assert!(run.report.stage("feature_engineering").is_some());
        assert!(run.matrix.dataset.n_rows() > 0);
    }
}

#[test]
fn csv_claim_stream_reports_resident_entries_honestly() {
    let path = fixture_dir().join("bdc/2023-06-30/bdc_NE_50_fixed_broadband.csv");
    let mut reader = AvailabilityReader::open(&path).expect("fixture file opens");
    let mut rows = Vec::new();
    while let Some(row) = reader.next_record().expect("fixture rows parse") {
        rows.push(row);
    }
    assert!(!rows.is_empty());
    let shards = AvailabilityShards::new(&rows);
    // The stream admits exactly its buffered row count — no under-reporting
    // to sneak past the residency budget.
    assert_eq!(shards.resident_entries(), rows.len());
    let drained: usize = (0..shards.shard_count())
        .map(|i| shards.shard(i).len())
        .sum();
    assert_eq!(drained, rows.len());
}

/// Drain one negative availability fixture to its typed error.
fn availability_err(name: &str) -> IngestError {
    let path = fixture_dir().join("negative").join(name);
    let mut reader = match AvailabilityReader::open(&path) {
        Err(e) => return e,
        Ok(r) => r,
    };
    loop {
        match reader.next_record() {
            Err(e) => return e,
            Ok(Some(_)) => {}
            Ok(None) => panic!("{name} parsed cleanly but must fail"),
        }
    }
}

fn ookla_err(name: &str) -> IngestError {
    let path = fixture_dir().join("negative").join(name);
    let mut reader = match OoklaReader::open(&path) {
        Err(e) => return e,
        Ok(r) => r,
    };
    loop {
        match reader.next_record() {
            Err(e) => return e,
            Ok(Some(_)) => {}
            Ok(None) => panic!("{name} parsed cleanly but must fail"),
        }
    }
}

#[test]
fn every_negative_fixture_hits_its_typed_error() {
    assert!(matches!(
        availability_err("availability_truncated_row.csv"),
        IngestError::TruncatedRow {
            expected: 12,
            found: 11,
            ..
        }
    ));
    assert!(matches!(
        availability_err("availability_shuffled_header.csv"),
        IngestError::ReorderedColumns { .. }
    ));
    assert!(matches!(
        availability_err("availability_nan_speed.csv"),
        IngestError::NonFiniteSpeed { column, .. }
            if column == "max_advertised_download_speed"
    ));
    assert!(matches!(
        availability_err("availability_bad_tech.csv"),
        IngestError::BadTechCode { code, .. } if code == "99"
    ));
    assert!(matches!(
        availability_err("availability_duplicate_column.csv"),
        IngestError::DuplicateColumn { column, .. } if column == "frn"
    ));
    assert!(matches!(
        availability_err("availability_missing_column.csv"),
        IngestError::MissingColumn { column, .. } if column == "h3_res8_id"
    ));
    assert!(matches!(
        availability_err("availability_unknown_column.csv"),
        IngestError::UnknownColumn { column, .. } if column == "notes"
    ));
    assert!(matches!(
        availability_err("availability_bad_hex.csv"),
        IngestError::BadField { column, .. } if column == "h3_res8_id"
    ));
    assert!(matches!(
        ookla_err("ookla_bad_quadkey.csv"),
        IngestError::BadField { column, .. } if column == "quadkey"
    ));
    assert!(matches!(
        ookla_err("ookla_inf_speed.csv"),
        IngestError::NonFiniteSpeed { column, .. } if column == "avg_d_kbps"
    ));
}

#[test]
fn io_missing_data_and_budget_errors_are_typed() {
    // Io: the directory does not exist at all.
    let missing = fixture_dir().join("does_not_exist");
    let Err(err) = FileWorld::load(&missing, &IngestOptions::default(), DiffMode::Sequential)
    else {
        panic!("a nonexistent directory must fail to load");
    };
    assert!(matches!(err, IngestError::Io { .. }), "{err}");

    // MissingData: a bdc directory with no release subdirectories.
    let empty = std::env::temp_dir().join(format!("redsus_empty_bdc_{}", std::process::id()));
    std::fs::create_dir_all(empty.join("bdc")).expect("create temp bdc dir");
    let Err(err) = FileWorld::load(&empty, &IngestOptions::default(), DiffMode::Sequential) else {
        panic!("an empty bdc directory must fail discovery");
    };
    let _ = std::fs::remove_dir_all(&empty);
    assert!(matches!(err, IngestError::MissingData { .. }), "{err}");

    // BudgetExceeded: the fixture's ~300 rows cannot fit 10 resident entries.
    let options = IngestOptions {
        max_resident_entries: Some(10),
        ..IngestOptions::default()
    };
    let Err(err) = FileWorld::load(&fixture_dir(), &options, DiffMode::Sequential) else {
        panic!("a 10-entry budget must breach");
    };
    assert!(matches!(err, IngestError::BudgetExceeded { .. }), "{err}");
    assert!(err
        .to_string()
        .contains("exceeded the resident-entry budget"));
}
