//! Generating FRN registrations and the ARIN-style WHOIS database.
//!
//! The generator controls which providers are matchable to ASNs (the paper
//! matches 72.4% of providers) and makes unmatched providers predominantly
//! small (Figure 4), introduces field-level mess so the four matching methods
//! agree imperfectly (Figure 3), gives major providers many ASNs, and creates
//! a few ASNs shared between corporate siblings (§6.1).
//!
//! Sharding: every random quantity is drawn in a parallel per-provider pass
//! (one stream per provider sequence number); the serial parts — the
//! unmatched-quota walk and the id/ASN allocation with the holding-company
//! coupling between consecutive providers — consume no randomness of their
//! own beyond a dedicated selection stream, so the output is bit-identical
//! for any worker count.

use std::collections::{BTreeMap, BTreeSet};

use asnmap::records::{AsnEntry, Net, Org};
use asnmap::{FrnRegistration, Poc, SiblingGroups, WhoisDb};
use bdc::{Asn, ProviderId};
use rand::Rng;

use crate::config::SynthConfig;
use crate::providers_gen::ProviderProfile;
use crate::shard::{map_shards, shard_rng, SynthStage};
use crate::text::{email_domain_for, street_address_for};

/// Shard key of the dedicated unmatched-quota selection stream (distinct from
/// every per-provider sequence number).
const SELECTION_SHARD: u64 = u64::MAX;

/// Everything one provider's shard pre-draws; the sequential assembly pass
/// combines these without consuming any randomness itself.
struct ProviderDraws {
    /// Registered physical address.
    address: String,
    /// WHOIS org name is "<name> Holdings" instead of the uppercased name.
    org_holdings: bool,
    /// POC email degrades to admin@ instead of the registered noc@.
    poc_admin_email: bool,
    /// POC company name degrades to "<name> Operations".
    poc_ops_company: bool,
    /// POC address differs from the registered address.
    poc_other_address: Option<String>,
    /// Whether each of the provider's ASNs lists the POC directly.
    asn_poc_attach: Vec<bool>,
    /// Join a pending holding company (shared ASN) when one exists.
    join_shared: bool,
    /// Start a new holding company when none is pending.
    start_shared: bool,
    /// Address of the holding company, if one is started.
    holdco_address: String,
}

/// Everything the registration generator produces.
#[derive(Debug, Clone)]
pub struct RegistrationData {
    /// Provider-side FRN registrations.
    pub registrations: Vec<FrnRegistration>,
    /// ASN-side WHOIS database.
    pub whois: WhoisDb,
    /// Ground-truth provider → ASN assignment (what a perfect matcher would
    /// recover).
    pub true_provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>>,
    /// An as2org-style reference grouping of ASNs by organisation.
    pub reference_groups: SiblingGroups,
}

/// Generate registrations and WHOIS data for all providers.
///
/// `claims_count` (distinct locations claimed per provider) decides which
/// providers end up unmatched: the smallest providers are the most likely to
/// be single-homed without an ASN of their own.
pub fn generate_registrations(
    config: &SynthConfig,
    profiles: &[ProviderProfile],
    claims_count: &BTreeMap<ProviderId, usize>,
    workers: usize,
) -> RegistrationData {
    // Decide the unmatched set: walk providers from smallest to largest claim
    // count and mark them unmatched until the quota is filled, skipping some so
    // a few small providers still have ASNs. The walk is inherently serial
    // (it stops when the quota fills) but cheap; it draws from a dedicated
    // selection stream.
    let mut selection_rng = shard_rng(config.seed, SynthStage::Registrations, SELECTION_SHARD);
    let mut by_size: Vec<&ProviderProfile> = profiles.iter().collect();
    by_size.sort_by_key(|p| claims_count.get(&p.provider.id).copied().unwrap_or(0));
    let quota = ((profiles.len() as f64) * (1.0 - config.asn_match_rate)).round() as usize;
    let mut unmatched: BTreeSet<ProviderId> = BTreeSet::new();
    for p in &by_size {
        if unmatched.len() >= quota {
            break;
        }
        // Majors always have ASNs, and the JCC-style provider must be
        // attributable for the §6.3 case study to be runnable.
        if p.provider.major || p.jcc_like {
            continue;
        }
        if selection_rng.gen_bool(0.75) {
            unmatched.insert(p.provider.id);
        }
    }
    // Fill any remaining quota from the small end unconditionally.
    for p in &by_size {
        if unmatched.len() >= quota {
            break;
        }
        if !p.provider.major && !p.jcc_like {
            unmatched.insert(p.provider.id);
        }
    }

    // Parallel pass: pre-draw every random quantity from one stream per
    // provider. Draws happen unconditionally (even for unmatched providers)
    // so each provider's stream never depends on another provider's state.
    let draws: Vec<ProviderDraws> = map_shards(workers, profiles, |seq, profile| {
        let mut rng = shard_rng(config.seed, SynthStage::Registrations, seq as u64);
        let address = street_address_for(&mut rng, seq as u32 + 1);
        // Number of ASNs: majors get several, small providers one or two.
        let n_asns = if profile.provider.major {
            rng.gen_range(3..8)
        } else {
            rng.gen_range(1..3)
        };
        let org_holdings = rng.gen_bool(0.2);
        let poc_admin_email = rng.gen_bool(0.3);
        let poc_ops_company = rng.gen_bool(0.15);
        let poc_other_address = rng
            .gen_bool(0.2)
            .then(|| street_address_for(&mut rng, seq as u32 + 500));
        // One attach flag per ASN; the vector length carries n_asns forward.
        let asn_poc_attach = (0..n_asns).map(|_| rng.gen_bool(0.5)).collect();
        let join_shared = rng.gen_bool(0.5);
        let start_shared = rng.gen_bool(0.06);
        let holdco_address = street_address_for(&mut rng, 9000 + seq as u32);
        ProviderDraws {
            address,
            org_holdings,
            poc_admin_email,
            poc_ops_company,
            poc_other_address,
            asn_poc_attach,
            join_shared,
            start_shared,
            holdco_address,
        }
    });

    // Serial assembly: allocate ids/ASNs and resolve the holding-company
    // coupling between consecutive providers. Consumes no randomness.
    let mut registrations = Vec::new();
    let mut whois = WhoisDb::default();
    let mut true_provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
    let mut reference_groups = SiblingGroups::new();

    let mut next_asn: u32 = 64500;
    let mut next_org: u64 = 1;
    let mut next_poc: u64 = 1;
    let mut next_net: u64 = 1;
    // Occasionally two consecutive small providers share a holding company
    // (and one ASN) — the "shared ASN" phenomenon.
    let mut pending_shared: Option<(String, Asn)> = None;

    for (seq, (profile, d)) in profiles.iter().zip(&draws).enumerate() {
        let provider = &profile.provider;
        let domain = email_domain_for(&provider.name);
        let contact_email = format!("noc@{domain}");
        registrations.push(FrnRegistration {
            frn: provider.frns.first().map(|f| f.value()).unwrap_or(0),
            provider_id: provider.id.value(),
            contact_email: contact_email.clone(),
            company_name: provider.name.clone(),
            physical_address: d.address.clone(),
        });

        if unmatched.contains(&provider.id) {
            continue;
        }

        let org_id = next_org;
        next_org += 1;
        // The WHOIS org name is a lightly mangled version of the legal name.
        let org_name = if d.org_holdings {
            format!("{} Holdings", provider.name)
        } else {
            provider.name.to_uppercase()
        };

        // POC fields degrade independently so the four methods disagree a bit.
        let poc_email = if d.poc_admin_email {
            format!("admin@{domain}")
        } else {
            contact_email.clone()
        };
        let poc_company = if d.poc_ops_company {
            format!("{} Operations", provider.name)
        } else {
            provider.name.clone()
        };
        let poc_address = d
            .poc_other_address
            .clone()
            .unwrap_or_else(|| d.address.clone());
        let poc_id = next_poc;
        next_poc += 1;
        whois.pocs.push(Poc {
            id: poc_id,
            email: poc_email,
            company_name: poc_company,
            address: poc_address,
        });
        whois.orgs.push(Org {
            id: org_id,
            name: org_name,
            poc_ids: vec![poc_id],
        });
        whois.nets.push(Net {
            id: next_net,
            org_id,
            poc_ids: vec![poc_id],
        });
        next_net += 1;

        let mut asns = BTreeSet::new();
        for attach in &d.asn_poc_attach {
            let asn = Asn(next_asn);
            next_asn += 1;
            whois.asns.push(AsnEntry {
                asn: asn.value(),
                org_id: Some(org_id),
                poc_ids: if *attach { vec![poc_id] } else { vec![] },
            });
            asns.insert(asn);
        }

        // Shared-ASN scenario: pair this provider with the previous pending
        // one under a common holding-company domain and a common ASN.
        if !provider.major {
            match pending_shared.take() {
                Some((shared_domain, shared_asn)) if d.join_shared => {
                    // Give this provider the shared contact domain as well,
                    // so the email-domain method maps the shared ASN to both.
                    registrations.last_mut().expect("just pushed").contact_email =
                        format!("noc@{shared_domain}");
                    asns.insert(shared_asn);
                }
                Some(pending) => pending_shared = Some(pending),
                None if d.start_shared => {
                    let shared_domain = format!("holdco{}.net", seq);
                    let shared_asn = Asn(next_asn);
                    next_asn += 1;
                    let shared_poc = next_poc;
                    next_poc += 1;
                    whois.pocs.push(Poc {
                        id: shared_poc,
                        email: format!("noc@{shared_domain}"),
                        company_name: format!("HoldCo {seq}"),
                        address: d.holdco_address.clone(),
                    });
                    whois.asns.push(AsnEntry {
                        asn: shared_asn.value(),
                        org_id: None,
                        poc_ids: vec![shared_poc],
                    });
                    registrations.last_mut().expect("just pushed").contact_email =
                        format!("noc@{shared_domain}");
                    asns.insert(shared_asn);
                    pending_shared = Some((shared_domain, shared_asn));
                }
                None => {}
            }
        }

        for asn in &asns {
            reference_groups.insert(provider.name.clone(), asn.value());
        }
        true_provider_asns.insert(provider.id, asns);
    }

    RegistrationData {
        registrations,
        whois,
        true_provider_asns,
        reference_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric_gen::{generate_fabric, generate_towns};
    use crate::providers_gen::{compute_claims, generate_providers};
    use asnmap::ProviderAsnMatcher;

    fn build() -> (
        SynthConfig,
        Vec<ProviderProfile>,
        RegistrationData,
        BTreeMap<ProviderId, usize>,
    ) {
        let config = SynthConfig::tiny(41);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 1);
        let profiles = generate_providers(&config, &towns, 1);
        let claims_count: BTreeMap<ProviderId, usize> = profiles
            .iter()
            .map(|p| {
                let claims = compute_claims(p, &towns, &fabric, &config);
                let mut locs: Vec<_> = claims.iter().map(|c| c.location).collect();
                locs.sort_unstable();
                locs.dedup();
                (p.provider.id, locs.len())
            })
            .collect();
        let data = generate_registrations(&config, &profiles, &claims_count, 1);
        (config, profiles, data, claims_count)
    }

    #[test]
    fn registrations_are_worker_count_invariant() {
        let (config, profiles, base, claims_count) = build();
        for workers in [2, 6] {
            let got = generate_registrations(&config, &profiles, &claims_count, workers);
            assert_eq!(got.registrations, base.registrations);
            assert_eq!(got.true_provider_asns, base.true_provider_asns);
            assert_eq!(got.whois.asns, base.whois.asns);
            assert_eq!(got.whois.pocs, base.whois.pocs);
            assert_eq!(got.whois.orgs, base.whois.orgs);
            assert_eq!(got.whois.nets, base.whois.nets);
        }
    }

    #[test]
    fn every_provider_has_a_registration() {
        let (_, profiles, data, _) = build();
        assert_eq!(data.registrations.len(), profiles.len());
    }

    #[test]
    fn matched_fraction_close_to_config() {
        let (config, profiles, data, _) = build();
        let matched = data.true_provider_asns.len() as f64 / profiles.len() as f64;
        assert!(
            (matched - config.asn_match_rate).abs() < 0.12,
            "matched fraction {matched}"
        );
    }

    #[test]
    fn majors_always_have_asns_and_more_of_them() {
        let (_, profiles, data, _) = build();
        for p in profiles.iter().filter(|p| p.provider.major) {
            let asns = data.true_provider_asns.get(&p.provider.id);
            assert!(asns.is_some(), "major {} unmatched", p.provider.name);
            assert!(asns.unwrap().len() >= 3);
        }
    }

    #[test]
    fn unmatched_providers_are_smaller() {
        let (_, profiles, data, claims_count) = build();
        let matched_sizes: Vec<usize> = profiles
            .iter()
            .filter(|p| data.true_provider_asns.contains_key(&p.provider.id))
            .map(|p| claims_count[&p.provider.id])
            .collect();
        let unmatched_sizes: Vec<usize> = profiles
            .iter()
            .filter(|p| !data.true_provider_asns.contains_key(&p.provider.id))
            .map(|p| claims_count[&p.provider.id])
            .collect();
        assert!(!unmatched_sizes.is_empty());
        let median = |mut v: Vec<usize>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            median(matched_sizes) > median(unmatched_sizes),
            "matched providers should claim more locations than unmatched ones"
        );
    }

    #[test]
    fn matcher_recovers_most_assignments() {
        let (_, _, data, _) = build();
        let matcher = ProviderAsnMatcher::new(data.registrations.clone());
        let report = matcher.run(&data.whois);
        // The matcher should find ASNs for the large majority of providers
        // that truly have them.
        let recovered = data
            .true_provider_asns
            .keys()
            .filter(|p| report.provider_to_asns.contains_key(&p.value()))
            .count();
        let frac = recovered as f64 / data.true_provider_asns.len() as f64;
        assert!(frac > 0.8, "matcher recovered only {frac}");
    }

    #[test]
    fn asn_numbers_are_unique() {
        let (_, _, data, _) = build();
        let mut asns: Vec<u32> = data.whois.asns.iter().map(|a| a.asn).collect();
        let before = asns.len();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(before, asns.len());
    }
}
