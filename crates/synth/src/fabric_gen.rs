//! Generating the synthetic Broadband Serviceable Location Fabric.
//!
//! BSLs are clustered into "towns": each state gets a number of towns
//! proportional to its population weight, and BSLs scatter around each town
//! centre with a roughly Gaussian radial profile plus a thin rural tail. The
//! clustering constant is tuned so the median number of BSLs per occupied
//! resolution-8 hex lands near the paper's reported value of 4 (Figure 9).
//!
//! Both generators are sharded: towns draw from one stream per *state*
//! ([`SynthStage::Towns`]), BSLs from one stream per *town*
//! ([`SynthStage::Fabric`]), with location ids assigned from per-town offsets
//! computed by prefix sum — so the fabric is bit-identical for any worker
//! count.

use bdc::{collect_shards, Bsl, Fabric, FabricStream, LocationId, ShardStream};
use geoprim::LatLng;
use rand::Rng;

use crate::config::SynthConfig;
use crate::shard::{map_shards, shard_rng, SynthStage};
use crate::states::{total_population_weight, STATES};

/// A population cluster that providers build networks around.
#[derive(Debug, Clone)]
pub struct Town {
    /// Index of the state in [`STATES`].
    pub state_index: usize,
    /// Two-letter state code (denormalised for convenience).
    pub state: String,
    /// Town centre.
    pub center: LatLng,
    /// Number of BSLs generated around the town.
    pub n_bsls: usize,
}

/// Generate town centres for every state, fanning one shard per state across
/// `workers` threads.
///
/// Degenerate configs (a handful of BSLs nationally) can round every state's
/// share to zero; the generator then falls back to a single town holding the
/// whole budget in the most populous state, so downstream stages always see
/// at least one town.
pub fn generate_towns(config: &SynthConfig, workers: usize) -> Vec<Town> {
    let total_weight = total_population_weight();
    let state_indices: Vec<usize> = (0..STATES.len()).collect();
    let towns: Vec<Town> = map_shards(workers, &state_indices, |_, &state_index| {
        let state = &STATES[state_index];
        let state_bsls =
            ((config.n_bsls as f64) * state.population_weight / total_weight).round() as usize;
        if state_bsls == 0 {
            return Vec::new();
        }
        let mut rng = shard_rng(config.seed, SynthStage::Towns, state_index as u64);
        let n_towns = (state_bsls / config.bsls_per_town).max(1);
        let bbox = state.bounding_box();
        // Shrink the sampling box slightly so towns (and their scatter) stay
        // well inside the state's bounding box.
        (0..n_towns)
            .map(|t| {
                let u = rng.gen_range(0.1..0.9);
                let v = rng.gen_range(0.1..0.9);
                let center = bbox.lerp(u, v);
                let mut n = state_bsls / n_towns;
                if t == 0 {
                    n += state_bsls % n_towns;
                }
                Town {
                    state_index,
                    state: state.code.to_string(),
                    center,
                    n_bsls: n,
                }
            })
            .collect::<Vec<Town>>()
    })
    .into_iter()
    .flatten()
    .collect();
    if !towns.is_empty() {
        return towns;
    }
    // Fallback for degenerate budgets: one town, all BSLs, biggest state.
    let (state_index, state) = STATES
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.population_weight
                .partial_cmp(&b.population_weight)
                .expect("population weights are finite")
        })
        .expect("STATES is non-empty");
    let mut rng = shard_rng(config.seed, SynthStage::Towns, state_index as u64);
    let u = rng.gen_range(0.1..0.9);
    let v = rng.gen_range(0.1..0.9);
    vec![Town {
        state_index,
        state: state.code.to_string(),
        center: state.bounding_box().lerp(u, v),
        n_bsls: config.n_bsls,
    }]
}

/// Per-town id offsets: town `i`'s BSLs get ids `offset[i]+1 .. offset[i+1]`.
///
/// All arithmetic is checked u64 — at 115M BSLs the ids are far past what a
/// u32 could hold, and a config that somehow overflows u64 (impossible after
/// [`SynthConfig::validate`], which caps `n_bsls`) fails loudly here instead
/// of silently wrapping into duplicate ids.
pub fn town_offsets(towns: &[Town]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(towns.len());
    let mut acc: u64 = 0;
    for town in towns {
        offsets.push(acc);
        acc = acc
            .checked_add(town.n_bsls as u64)
            .expect("fabric location-id space overflowed u64; SynthConfig::validate caps n_bsls");
    }
    offsets
}

/// Scatter one town's BSLs, drawing from the town's own RNG stream
/// ([`SynthStage::Fabric`], keyed by town index) with ids starting at
/// `first_id`. This is the single generation kernel shared by the
/// materialised path ([`generate_fabric`]) and the streaming path
/// ([`FabricEmitter`]) — equivalence between the two is by construction.
pub fn town_bsls(config: &SynthConfig, town_index: usize, town: &Town, first_id: u64) -> Vec<Bsl> {
    let mut rng = shard_rng(config.seed, SynthStage::Fabric, town_index as u64);
    let mut next_id = first_id;
    (0..town.n_bsls)
        .map(|_| {
            // Radial profile: most structures spread uniformly over a
            // compact town disc (giving a few BSLs per res-8 hex, as in
            // Figure 9), plus a thin rural tail.
            let town_radius_km = 3.8;
            let distance_km = if rng.gen_bool(0.92) {
                // Uniform areal density inside the town disc.
                town_radius_km * rng.gen_range(0.0..1.0f64).sqrt()
            } else {
                rng.gen_range(town_radius_km..10.0)
            };
            let bearing = rng.gen_range(0.0..360.0);
            let position = town.center.destination(bearing, distance_km * 1000.0);
            let unit_count = if rng.gen_bool(0.06) {
                rng.gen_range(2..40)
            } else {
                1
            };
            let community_anchor = rng.gen_bool(0.01);
            let bsl = Bsl::new(
                LocationId(next_id),
                position,
                unit_count,
                community_anchor,
                town.state.clone(),
            );
            next_id = next_id
                .checked_add(1)
                .expect("fabric location ids overflowed u64");
            bsl
        })
        .collect()
}

/// A [`FabricStream`] that regenerates BSL shards (one per town) on demand
/// from the per-town RNG streams instead of holding them resident. Only the
/// town list and its id offsets stay in memory, so a national fabric streams
/// through a few thousand entries of state instead of 115M `Bsl`s.
pub struct FabricEmitter<'a> {
    config: &'a SynthConfig,
    towns: &'a [Town],
    offsets: Vec<u64>,
    total: u64,
}

impl<'a> FabricEmitter<'a> {
    pub fn new(config: &'a SynthConfig, towns: &'a [Town]) -> Self {
        let offsets = town_offsets(towns);
        let total = offsets
            .last()
            .map(|&o| o + towns.last().map(|t| t.n_bsls as u64).unwrap_or(0))
            .unwrap_or(0);
        Self {
            config,
            towns,
            offsets,
            total,
        }
    }

    /// The towns this emitter scatters BSLs around (shard `i` ↔ town `i`).
    pub fn towns(&self) -> &[Town] {
        self.towns
    }

    /// First location id of shard `index` (ids are `first_id(i) ..
    /// first_id(i) + towns[i].n_bsls`).
    pub fn first_id(&self, index: usize) -> u64 {
        self.offsets[index] + 1
    }
}

impl ShardStream for FabricEmitter<'_> {
    type Item = Bsl;

    fn shard_count(&self) -> usize {
        self.towns.len()
    }

    fn shard(&self, index: usize) -> Vec<Bsl> {
        town_bsls(
            self.config,
            index,
            &self.towns[index],
            self.offsets[index] + 1,
        )
    }

    fn resident_entries(&self) -> usize {
        // The town list plus its offset table is all the emitter keeps live.
        self.towns.len() * 2
    }
}

impl FabricStream for FabricEmitter<'_> {
    fn total_locations(&self) -> u64 {
        self.total
    }
}

/// Generate the fabric by scattering BSLs around every town, one shard per
/// town. Location ids are assigned from per-town offsets (prefix sums of
/// `n_bsls`), so ids are dense, unique and independent of scheduling.
///
/// This is now a thin adapter that materialises the [`FabricEmitter`] stream;
/// the tiny/experiment/large presets still get a resident [`Fabric`] while
/// the national path drains the same shards without collecting them.
pub fn generate_fabric(config: &SynthConfig, towns: &[Town], workers: usize) -> Fabric {
    let emitter = FabricEmitter::new(config, towns);
    Fabric::new(collect_shards(&emitter, workers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> (Vec<Town>, Fabric) {
        let config = SynthConfig::tiny(7);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 1);
        (towns, fabric)
    }

    #[test]
    fn bsl_count_close_to_requested() {
        let config = SynthConfig::tiny(7);
        let (_, fabric) = small_world();
        let n = fabric.len() as f64;
        let target = config.n_bsls as f64;
        assert!(
            (n - target).abs() / target < 0.05,
            "generated {n} vs target {target}"
        );
    }

    #[test]
    fn every_state_with_weight_gets_towns() {
        let (towns, _) = small_world();
        let states_with_towns: std::collections::HashSet<&str> =
            towns.iter().map(|t| t.state.as_str()).collect();
        // At tiny scale small territories may round to zero BSLs, but the big
        // states must all be present.
        for code in ["CA", "TX", "NY", "VA", "NE"] {
            assert!(states_with_towns.contains(code), "missing {code}");
        }
    }

    #[test]
    fn bsls_stay_reasonably_near_their_town() {
        let (towns, fabric) = small_world();
        // Spot-check: every BSL is within 25 km of *some* town centre.
        for bsl in fabric.bsls().iter().step_by(97) {
            let nearest = towns
                .iter()
                .map(|t| t.center.haversine_km(&bsl.position))
                .fold(f64::INFINITY, f64::min);
            assert!(
                nearest < 25.0,
                "BSL {} was {nearest} km from any town",
                bsl.id
            );
        }
    }

    #[test]
    fn median_bsls_per_hex_in_paper_range() {
        // The paper reports a median of 4 BSLs per occupied res-8 hex; the
        // generator should land in the same ballpark.
        let config = SynthConfig::experiment(11);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 1);
        let median = fabric.median_bsls_per_hex();
        assert!(
            (2..=9).contains(&median),
            "median BSLs per hex was {median}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let gen = |seed| {
            let config = SynthConfig::tiny(seed);
            let towns = generate_towns(&config, 1);
            let fabric = generate_fabric(&config, &towns, 1);
            fabric.bsls().iter().map(|b| b.hex).collect::<Vec<_>>()
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    #[test]
    fn worker_count_does_not_change_the_fabric() {
        let config = SynthConfig::tiny(7);
        let base_towns = generate_towns(&config, 1);
        let base: Vec<(u64, u64)> = generate_fabric(&config, &base_towns, 1)
            .bsls()
            .iter()
            .map(|b| {
                (
                    b.id.value(),
                    b.position.lat.to_bits() ^ b.position.lng.to_bits(),
                )
            })
            .collect();
        for workers in [2, 3, 8] {
            let towns = generate_towns(&config, workers);
            assert_eq!(towns.len(), base_towns.len());
            let got: Vec<(u64, u64)> = generate_fabric(&config, &towns, workers)
                .bsls()
                .iter()
                .map(|b| {
                    (
                        b.id.value(),
                        b.position.lat.to_bits() ^ b.position.lng.to_bits(),
                    )
                })
                .collect();
            assert_eq!(got, base, "fabric differs at {workers} workers");
        }
    }

    #[test]
    fn emitter_shards_match_materialised_fabric() {
        let config = SynthConfig::tiny(7);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 2);
        let emitter = FabricEmitter::new(&config, &towns);
        assert_eq!(emitter.shard_count(), towns.len());
        assert_eq!(emitter.total_locations(), fabric.len() as u64);
        // The emitter keeps only per-town state resident, never the BSLs.
        assert!(emitter.resident_entries() < fabric.len() / 10);
        let streamed: Vec<Bsl> = (0..emitter.shard_count())
            .flat_map(|i| emitter.shard(i))
            .collect();
        let key = |b: &Bsl| {
            (
                b.id.value(),
                b.position.lat.to_bits(),
                b.position.lng.to_bits(),
                b.unit_count,
                b.community_anchor,
            )
        };
        assert_eq!(
            streamed.iter().map(key).collect::<Vec<_>>(),
            fabric.bsls().iter().map(key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn location_ids_are_unique_and_positive() {
        let (_, fabric) = small_world();
        let mut ids: Vec<u64> = fabric.bsls().iter().map(|b| b.id.value()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert!(ids[0] >= 1);
    }
}
