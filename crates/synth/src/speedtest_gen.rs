//! Generating crowdsourced speed tests from the ground-truth coverage.
//!
//! Ookla device density tracks *actual* service availability: hexes genuinely
//! served by some provider see roughly `ookla_devices_per_served_bsl` unique
//! devices per BSL, unserved hexes see an order of magnitude fewer. MLab tests
//! are generated per provider (through that provider's ASNs) only in hexes the
//! provider genuinely serves — which is exactly the association the paper's
//! likely-served synthesis relies on.

use std::collections::{BTreeMap, BTreeSet};

use bdc::{Asn, DayStamp, Fabric, ProviderId, ShardStream, SpeedTestStream, Technology};
use geoprim::LatLng;
use hexgrid::{HexCell, QuadTile, OOKLA_ZOOM};
use rand::Rng;
use speedtest::{MlabDataset, MlabTest, OoklaDataset, OoklaTileRecord};

use crate::config::SynthConfig;
use crate::shard::{shard_rng, SynthStage};

/// Generate the Ookla tile for one occupied hex — shard `hex_index` of the
/// sorted occupied-hex order, drawing only from that hex's RNG stream. The
/// single generation kernel behind both [`generate_ookla`] and the streaming
/// [`OoklaEmitter`].
pub fn ookla_hex_record(
    config: &SynthConfig,
    hex_index: usize,
    hex: &HexCell,
    bsls: usize,
    served: bool,
) -> Option<OoklaTileRecord> {
    let bsls = bsls as f64;
    if bsls == 0.0 {
        return None;
    }
    let mut rng = shard_rng(config.seed, SynthStage::Ookla, hex_index as u64);
    let devices = if served {
        bsls * config.ookla_devices_per_served_bsl * rng.gen_range(0.8..1.5)
    } else {
        bsls * rng.gen_range(0.02..0.45)
    };
    let devices = devices.round().max(if served { 1.0 } else { 0.0 });
    if devices == 0.0 {
        return None;
    }
    let tests = (devices * rng.gen_range(2.0..4.0)).round();
    let (down_kbps, up_kbps, latency) = if served {
        (
            rng.gen_range(80_000.0..900_000.0),
            rng.gen_range(10_000.0..500_000.0),
            rng.gen_range(8.0..40.0),
        )
    } else {
        (
            rng.gen_range(2_000.0..30_000.0),
            rng.gen_range(500.0..5_000.0),
            rng.gen_range(30.0..120.0),
        )
    };
    Some(OoklaTileRecord {
        tile: QuadTile::containing(&hex.center(), OOKLA_ZOOM),
        tests: tests as u32,
        devices: devices as u32,
        avg_download_kbps: down_kbps,
        avg_upload_kbps: up_kbps,
        avg_latency_ms: latency,
    })
}

/// A [`SpeedTestStream`] of Ookla tiles over a sorted occupied-hex table
/// (`(hex, bsl count, truly served)` per entry): shard `i` regenerates hex
/// `i`'s tile on demand. Only the hex table stays resident — which the
/// streaming path already holds for label construction, so the Ookla stage
/// adds no fabric-sized state.
pub struct OoklaEmitter<'a> {
    config: &'a SynthConfig,
    hexes: &'a [(HexCell, u32, bool)],
}

impl<'a> OoklaEmitter<'a> {
    /// `hexes` must be the occupied hexes in ascending hex order — the shard
    /// order `generate_ookla` has always used.
    pub fn new(config: &'a SynthConfig, hexes: &'a [(HexCell, u32, bool)]) -> Self {
        Self { config, hexes }
    }
}

impl ShardStream for OoklaEmitter<'_> {
    type Item = OoklaTileRecord;

    fn shard_count(&self) -> usize {
        self.hexes.len()
    }

    fn shard(&self, index: usize) -> Vec<OoklaTileRecord> {
        let (hex, bsls, served) = self.hexes[index];
        ookla_hex_record(self.config, index, &hex, bsls as usize, served)
            .into_iter()
            .collect()
    }

    fn resident_entries(&self) -> usize {
        self.hexes.len()
    }
}

impl SpeedTestStream for OoklaEmitter<'_> {}

/// Generate the Ookla open-data tiles. Each occupied hex contributes one tile
/// centred on the hex; the tile's device count reflects whether the hex is
/// genuinely served by any provider. One shard (and one RNG stream) per
/// occupied hex, in sorted hex order. Thin adapter over [`OoklaEmitter`].
pub fn generate_ookla(
    config: &SynthConfig,
    fabric: &Fabric,
    truly_served_hexes: &BTreeSet<HexCell>,
    workers: usize,
) -> OoklaDataset {
    // Sort the occupied hexes so shard indices (and therefore the streams and
    // the whole generated world) are independent of hash-map iteration order.
    let mut hexes: Vec<&HexCell> = fabric.hexes().collect();
    hexes.sort();
    let table: Vec<(HexCell, u32, bool)> = hexes
        .into_iter()
        .map(|h| {
            (
                *h,
                fabric.bsl_count_in_hex(h) as u32,
                truly_served_hexes.contains(h),
            )
        })
        .collect();
    let emitter = OoklaEmitter::new(config, &table);
    OoklaDataset::new(bdc::collect_shards(&emitter, workers))
}

/// Generate one provider's MLab tests (shard keyed by provider id), drawing
/// only from that provider's RNG stream. The single generation kernel behind
/// both [`generate_mlab`] and the streaming [`MlabEmitter`].
pub fn mlab_provider_tests(
    config: &SynthConfig,
    provider: ProviderId,
    asns: &BTreeSet<Asn>,
    served_hexes: Option<&BTreeSet<HexCell>>,
) -> Vec<MlabTest> {
    let window_start = DayStamp::from_ymd(2021, 10, 1);
    let window_days = 365u32;
    let mut out = Vec::new();
    if asns.is_empty() {
        return out;
    }
    let asns: Vec<Asn> = asns.iter().copied().collect();
    let Some(hexes) = served_hexes else {
        return out;
    };
    let mut rng = shard_rng(config.seed, SynthStage::Mlab, u64::from(provider.value()));
    for hex in hexes {
        let expected = config.mlab_tests_per_served_hex * rng.gen_range(0.3..1.8);
        let n = expected.round() as usize;
        for _ in 0..n {
            let center: LatLng = hex.center();
            let jitter_km = rng.gen_range(0.0..3.0);
            let bearing = rng.gen_range(0.0..360.0);
            let geo_center = center.destination(bearing, jitter_km * 1000.0);
            // Mostly precise geolocations with a small unusable tail above
            // the paper's 20 km filter.
            let accuracy_radius_km = if rng.gen_bool(0.93) {
                rng.gen_range(0.5..12.0)
            } else {
                rng.gen_range(20.5..80.0)
            };
            out.push(MlabTest {
                asn: asns[rng.gen_range(0..asns.len())],
                download_mbps: rng.gen_range(5.0..800.0),
                upload_mbps: rng.gen_range(1.0..300.0),
                latency_ms: rng.gen_range(5.0..90.0),
                geo_center,
                accuracy_radius_km,
                day: window_start.plus_days(rng.gen_range(0..window_days)),
            });
        }
    }
    out
}

/// A [`SpeedTestStream`] of MLab tests, one shard per ASN-matched provider
/// (in provider-id order, as [`generate_mlab`] has always sharded). Resident
/// state is the provider → ASN and provider → served-hex maps the caller
/// already holds; each shard's tests are regenerated on demand.
pub struct MlabEmitter<'a> {
    config: &'a SynthConfig,
    shards: Vec<(ProviderId, &'a BTreeSet<Asn>)>,
    served_hexes_by_provider: &'a BTreeMap<ProviderId, BTreeSet<HexCell>>,
}

impl<'a> MlabEmitter<'a> {
    pub fn new(
        config: &'a SynthConfig,
        provider_asns: &'a BTreeMap<ProviderId, BTreeSet<Asn>>,
        served_hexes_by_provider: &'a BTreeMap<ProviderId, BTreeSet<HexCell>>,
    ) -> Self {
        Self {
            config,
            shards: provider_asns.iter().map(|(p, a)| (*p, a)).collect(),
            served_hexes_by_provider,
        }
    }
}

impl ShardStream for MlabEmitter<'_> {
    type Item = MlabTest;

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, index: usize) -> Vec<MlabTest> {
        let (provider, asns) = self.shards[index];
        mlab_provider_tests(
            self.config,
            provider,
            asns,
            self.served_hexes_by_provider.get(&provider),
        )
    }

    fn resident_entries(&self) -> usize {
        self.shards.len()
            + self
                .served_hexes_by_provider
                .values()
                .map(BTreeSet::len)
                .sum::<usize>()
    }
}

impl SpeedTestStream for MlabEmitter<'_> {}

/// Generate MLab NDT7 tests for every provider that has at least one ASN, in
/// the hexes that provider genuinely serves. One shard (and one RNG stream)
/// per provider, keyed by provider id. Thin adapter over [`MlabEmitter`].
pub fn generate_mlab(
    config: &SynthConfig,
    provider_asns: &BTreeMap<ProviderId, BTreeSet<Asn>>,
    served_hexes_by_provider: &BTreeMap<ProviderId, BTreeSet<HexCell>>,
    workers: usize,
) -> MlabDataset {
    let emitter = MlabEmitter::new(config, provider_asns, served_hexes_by_provider);
    MlabDataset::new(bdc::collect_shards(&emitter, workers))
}

/// Derive the hex-level ground truth sets from location-level claims:
/// `(truly served hexes overall, truly served hexes per provider)`.
pub fn served_hex_sets(
    fabric: &Fabric,
    claims: &BTreeMap<ProviderId, Vec<crate::providers_gen::ClaimTruth>>,
) -> (BTreeSet<HexCell>, BTreeMap<ProviderId, BTreeSet<HexCell>>) {
    let mut overall = BTreeSet::new();
    let mut per_provider: BTreeMap<ProviderId, BTreeSet<HexCell>> = BTreeMap::new();
    for (provider, provider_claims) in claims {
        for c in provider_claims {
            if !c.truly_served {
                continue;
            }
            if let Some(bsl) = fabric.get(c.location) {
                overall.insert(bsl.hex);
                per_provider.entry(*provider).or_default().insert(bsl.hex);
            }
        }
    }
    (overall, per_provider)
}

/// Hex-level ground truth for every claimed observation: `(provider, hex,
/// technology) -> truly served?` where a hex counts as truly served when at
/// least one claimed BSL inside it is genuinely served.
pub fn hex_observation_truth(
    fabric: &Fabric,
    claims: &BTreeMap<ProviderId, Vec<crate::providers_gen::ClaimTruth>>,
) -> BTreeMap<(ProviderId, HexCell, Technology), bool> {
    let mut truth: BTreeMap<(ProviderId, HexCell, Technology), bool> = BTreeMap::new();
    for (provider, provider_claims) in claims {
        for c in provider_claims {
            if let Some(bsl) = fabric.get(c.location) {
                let entry = truth
                    .entry((*provider, bsl.hex, c.technology))
                    .or_insert(false);
                *entry |= c.truly_served;
            }
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric_gen::{generate_fabric, generate_towns};
    use crate::providers_gen::{compute_all_claims, generate_providers};

    fn world() -> (
        SynthConfig,
        Fabric,
        BTreeMap<ProviderId, Vec<crate::providers_gen::ClaimTruth>>,
    ) {
        let config = SynthConfig::tiny(31);
        let towns = generate_towns(&config, 1);
        let fabric = generate_fabric(&config, &towns, 1);
        let profiles = generate_providers(&config, &towns, 1);
        let claims = compute_all_claims(&profiles, &towns, &fabric, &config, 1);
        (config, fabric, claims)
    }

    #[test]
    fn ookla_density_tracks_ground_truth() {
        let (config, fabric, claims) = world();
        let (served, _) = served_hex_sets(&fabric, &claims);
        let ookla = generate_ookla(&config, &fabric, &served, 1);
        assert!(!ookla.is_empty());
        // Average devices per BSL should be clearly higher in served hexes.
        let agg = ookla.aggregate_to_hexes(hexgrid::NBM_RESOLUTION);
        let mut served_ratio = Vec::new();
        let mut unserved_ratio = Vec::new();
        for (hex, a) in &agg {
            let bsls = fabric.bsl_count_in_hex(hex);
            if bsls == 0 {
                continue;
            }
            let ratio = a.devices / bsls as f64;
            if served.contains(hex) {
                served_ratio.push(ratio);
            } else {
                unserved_ratio.push(ratio);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&served_ratio) > 2.0 * mean(&unserved_ratio),
            "served {} vs unserved {}",
            mean(&served_ratio),
            mean(&unserved_ratio)
        );
        assert!(mean(&served_ratio) > 1.0);
    }

    #[test]
    fn mlab_tests_only_in_provider_served_hexes() {
        let (config, fabric, claims) = world();
        let (_, per_provider) = served_hex_sets(&fabric, &claims);
        // Give the first two providers an ASN each.
        let mut provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        for (i, p) in per_provider.keys().take(2).enumerate() {
            provider_asns.insert(*p, BTreeSet::from([Asn(64500 + i as u32)]));
        }
        let mlab = generate_mlab(&config, &provider_asns, &per_provider, 1);
        assert!(!mlab.is_empty());
        // Every test's ASN belongs to one of the two providers.
        for t in mlab.tests() {
            assert!(t.asn.value() == 64500 || t.asn.value() == 64501);
        }
        // A small fraction of tests is deliberately unusable (radius > 20 km).
        let unusable = mlab.tests().iter().filter(|t| !t.usable()).count();
        assert!(unusable > 0);
        assert!((unusable as f64) < 0.2 * mlab.len() as f64);
    }

    #[test]
    fn providers_without_asns_generate_no_tests() {
        let (config, fabric, claims) = world();
        let (_, per_provider) = served_hex_sets(&fabric, &claims);
        let provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        let mlab = generate_mlab(&config, &provider_asns, &per_provider, 1);
        assert!(mlab.is_empty());
    }

    #[test]
    fn speed_tests_are_worker_count_invariant() {
        let (config, fabric, claims) = world();
        let (served, per_provider) = served_hex_sets(&fabric, &claims);
        let mut provider_asns: BTreeMap<ProviderId, BTreeSet<Asn>> = BTreeMap::new();
        for (i, p) in per_provider.keys().take(4).enumerate() {
            provider_asns.insert(*p, BTreeSet::from([Asn(64500 + i as u32)]));
        }
        let ookla_base = generate_ookla(&config, &fabric, &served, 1);
        let mlab_base = generate_mlab(&config, &provider_asns, &per_provider, 1);
        for workers in [2, 5] {
            let ookla = generate_ookla(&config, &fabric, &served, workers);
            assert_eq!(
                ookla.records(),
                ookla_base.records(),
                "ookla differs at {workers} workers"
            );
            let mlab = generate_mlab(&config, &provider_asns, &per_provider, workers);
            assert_eq!(mlab.len(), mlab_base.len());
            for (a, b) in mlab.tests().iter().zip(mlab_base.tests()) {
                assert_eq!(a.asn, b.asn);
                assert_eq!(a.download_mbps.to_bits(), b.download_mbps.to_bits());
                assert_eq!(a.geo_center.lat.to_bits(), b.geo_center.lat.to_bits());
            }
        }
    }

    #[test]
    fn hex_truth_is_or_over_locations() {
        let (_, fabric, claims) = world();
        let truth = hex_observation_truth(&fabric, &claims);
        assert!(!truth.is_empty());
        // There must be both served and unserved observations.
        let served = truth.values().filter(|&&v| v).count();
        let unserved = truth.len() - served;
        assert!(served > 0 && unserved > 0);
    }

    #[test]
    fn served_hex_sets_consistent() {
        let (_, fabric, claims) = world();
        let (overall, per_provider) = served_hex_sets(&fabric, &claims);
        let union: BTreeSet<HexCell> = per_provider.values().flatten().copied().collect();
        assert_eq!(overall, union);
    }
}
