//! Seeded-loop property tests of the artifact format: random models survive
//! serialize → deserialize with bit-identical predictions, and malformed
//! bytes come back as typed errors — never panics.

use ml::{Dataset, FlatForest, GbdtModel, GbdtParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redsus_serve::{
    decode_model, encode_model, model_fingerprint, ArtifactError, ServedModel, ARTIFACT_MAGIC,
};

fn random_model(seed: u64) -> (GbdtModel, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_features = rng.gen_range(1..8usize);
    let names: Vec<String> = (0..n_features).map(|f| format!("feat_{f}")).collect();
    let mut d = Dataset::new(names);
    let n_rows = rng.gen_range(40..250usize);
    for _ in 0..n_rows {
        let row: Vec<f32> = (0..n_features)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < 0.08 {
                    f32::NAN
                } else {
                    rng.gen_range(-3.0..3.0)
                }
            })
            .collect();
        let signal = row.iter().find(|v| !v.is_nan()).copied().unwrap_or(0.0);
        d.push_row(&row, if signal > 0.0 { 1.0 } else { 0.0 });
    }
    let params = GbdtParams {
        n_estimators: rng.gen_range(1..20usize),
        max_depth: rng.gen_range(0..5usize),
        learning_rate: rng.gen_range(0.05..0.5),
        subsample: rng.gen_range(0.5..1.0),
        colsample_bytree: rng.gen_range(0.5..1.0),
        max_bins: rng.gen_range(4..64usize),
        seed,
        early_stopping_rounds: if rng.gen_range(0.0..1.0) < 0.3 {
            Some(rng.gen_range(1..10usize))
        } else {
            None
        },
        ..GbdtParams::default()
    };
    (GbdtModel::fit(&d, params), d)
}

/// Round trip is lossless: decoded models predict bit-identically (both the
/// recursive and the flattened paths) on every training row and on
/// all-missing rows, and the artifact fingerprint is stable.
#[test]
fn random_models_round_trip_bit_identically() {
    for seed in 0..10u64 {
        let (model, data) = random_model(0xa57e_fac7 + seed);
        let bytes = encode_model(&model);
        let decoded =
            decode_model(&bytes).unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));
        assert_eq!(decoded.fingerprint, model_fingerprint(&model));
        assert_eq!(decoded.model.params().seed, model.params().seed);
        assert_eq!(
            decoded.model.params().early_stopping_rounds,
            model.params().early_stopping_rounds
        );
        assert_eq!(decoded.model.feature_names(), model.feature_names());

        let flat = FlatForest::from_model(&decoded.model);
        for r in 0..data.n_rows() {
            let row = data.row(r);
            let expected = model.predict_margin(row);
            assert_eq!(
                decoded.model.predict_margin(row).to_bits(),
                expected.to_bits(),
                "seed {seed} row {r}: recursive margin drift after round trip"
            );
            assert_eq!(
                flat.predict_margin(row).to_bits(),
                expected.to_bits(),
                "seed {seed} row {r}: flat margin drift after round trip"
            );
        }
        let missing = vec![f32::NAN; data.n_features()];
        assert_eq!(
            decoded.model.predict_margin(&missing).to_bits(),
            model.predict_margin(&missing).to_bits()
        );

        // Canonical: encoding is a pure function of the model, so encode ∘
        // decode ∘ encode is the identity on bytes.
        assert_eq!(encode_model(&decoded.model), bytes);
    }
}

/// Truncating an artifact anywhere must yield a typed error, never a panic
/// and never a silently usable model.
#[test]
fn truncated_bytes_are_rejected_at_every_length() {
    let (model, _) = random_model(99);
    let bytes = encode_model(&model);
    // Every prefix strictly shorter than the artifact (sampled densely at
    // the envelope, sparsely through the payload to keep the loop fast).
    let mut lengths: Vec<usize> = (0..32.min(bytes.len())).collect();
    lengths.extend((32..bytes.len()).step_by(7));
    for len in lengths {
        match decode_model(&bytes[..len]) {
            Err(
                ArtifactError::Truncated { .. }
                | ArtifactError::FingerprintMismatch { .. }
                | ArtifactError::Corrupt(_),
            ) => {}
            Err(other) => panic!("prefix of {len}: unexpected error class {other}"),
            Ok(_) => panic!("prefix of {len} bytes decoded successfully"),
        }
    }
}

/// Flipping any single byte must be caught by the content fingerprint (or,
/// for the magic/trailer bytes themselves, by their own checks).
#[test]
fn corrupted_bytes_are_rejected_at_every_position() {
    let (model, _) = random_model(7);
    let bytes = encode_model(&model);
    for pos in (0..bytes.len()).step_by(11).chain([bytes.len() - 1]) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x40;
        match decode_model(&corrupted) {
            Err(_) => {}
            Ok(_) => panic!("flip at byte {pos} went undetected"),
        }
    }
}

#[test]
fn wrong_magic_and_wrong_version_are_distinct_errors() {
    let (model, _) = random_model(3);
    let bytes = encode_model(&model);

    let mut wrong_magic = bytes.clone();
    wrong_magic[..8].copy_from_slice(b"NOTSUSSY");
    assert!(matches!(
        decode_model(&wrong_magic),
        Err(ArtifactError::BadMagic)
    ));
    assert_eq!(&bytes[..8], &ARTIFACT_MAGIC);

    // A future version, re-sealed with a valid fingerprint so the version
    // check is what rejects it.
    let mut future = bytes.clone();
    future[8..10].copy_from_slice(&999u16.to_le_bytes());
    let fp = redsus_serve::artifact::fnv1a(&future[..future.len() - 8]);
    let n = future.len();
    future[n - 8..].copy_from_slice(&fp.to_le_bytes());
    assert!(matches!(
        decode_model(&future),
        Err(ArtifactError::UnsupportedVersion { found: 999 })
    ));
}

#[test]
fn served_model_load_round_trip() {
    let (model, data) = random_model(21);
    let path = std::env::temp_dir().join(format!(
        "redsus_roundtrip_{}_{}.rsm",
        std::process::id(),
        21
    ));
    let fp = redsus_serve::write_artifact(&path, &model).expect("write");
    let served = ServedModel::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(served.fingerprint(), fp);
    assert_eq!(served.fingerprint_hex(), format!("{fp:#018x}"));
    for r in (0..data.n_rows()).step_by(13) {
        assert_eq!(
            served.forest().predict_proba(data.row(r)).to_bits(),
            model.predict_proba(data.row(r)).to_bits()
        );
    }
}
