//! Criterion benches of the two dataset stages — `label_construction` and
//! `feature_engineering` — under the worker-invariance contract: the same
//! bits under every schedule, so the sweep measures pure scheduling overhead
//! or win (on a single-core container the worker counts are forced and the
//! overhead is the honest number).
//!
//! Alongside wall-clock, the bench reports rows/s throughput and the staged
//! engine's per-stage wall-clock for both execution modes as metrics.
//!
//! Regenerate the committed report with (from the workspace root; the path
//! must be absolute because cargo runs the bench binary with `crates/bench`
//! as its working directory):
//!
//! ```sh
//! BENCH_JSON=$PWD/BENCH_features.json cargo bench -p redsus_bench --bench labelfeat
//! ```

use criterion::{criterion_group, criterion_main, report_metric, Criterion};
use redsus_core::features::{build_features_with, FeatureConfig, FeatureMode};
use redsus_core::labels::{LabelMode, LabelingOptions};
use redsus_core::pipeline::{AnalysisContext, PipelineEngine, PipelineStage};
use std::hint::black_box;
use std::time::Instant;
use synth::{SynthConfig, SynthUs};

/// The forced worker counts of the sweep (beyond the sequential baseline).
const SWEEP: [usize; 2] = [2, 4];

fn bench_preset(c: &mut Criterion, label: &str, world: &SynthUs) {
    let ctx = AnalysisContext::prepare(world);
    let options = LabelingOptions::default();
    let config = FeatureConfig::default();

    let mut group = c.benchmark_group(&format!("labels_{label}"));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(ctx.build_labels_with(world, &options, LabelMode::Sequential)))
    });
    for workers in SWEEP {
        group.bench_function(format!("threads{workers}"), |b| {
            b.iter(|| {
                black_box(ctx.build_labels_with(world, &options, LabelMode::Threads(workers)))
            })
        });
    }
    group.finish();

    let labels = ctx.build_labels(world, &options);
    let mut group = c.benchmark_group(&format!("features_{label}"));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(build_features_with(
                world,
                &ctx,
                &labels,
                &config,
                FeatureMode::Sequential,
            ))
        })
    });
    for workers in SWEEP {
        group.bench_function(format!("threads{workers}"), |b| {
            b.iter(|| {
                black_box(build_features_with(
                    world,
                    &ctx,
                    &labels,
                    &config,
                    FeatureMode::Threads(workers),
                ))
            })
        });
    }
    group.finish();

    // Throughput: observations labelled / rows vectorised per second on the
    // sequential schedule (the per-worker number the sweep scales from).
    let start = Instant::now();
    let observations = ctx.build_labels_with(world, &options, LabelMode::Sequential);
    let label_wall = start.elapsed();
    let start = Instant::now();
    let matrix = build_features_with(world, &ctx, &observations, &config, FeatureMode::Sequential);
    let feature_wall = start.elapsed();
    report_metric(
        format!("labels_{label}/observations"),
        observations.len() as f64,
        "rows",
    );
    report_metric(
        format!("labels_{label}/rows_per_s"),
        observations.len() as f64 / label_wall.as_secs_f64(),
        "rows/s",
    );
    report_metric(
        format!("features_{label}/rows_per_s"),
        matrix.dataset.n_rows() as f64 / feature_wall.as_secs_f64(),
        "rows/s",
    );
    report_metric(
        format!("features_{label}/row_width"),
        matrix.dataset.n_features() as f64,
        "features",
    );

    // The staged engine's own view: per-stage wall-clock of the two dataset
    // stages under both execution modes.
    for engine in [PipelineEngine::sequential(), PipelineEngine::parallel()] {
        let run = engine.run_to_dataset(world, &options, &config);
        let tag = match engine.mode() {
            redsus_core::pipeline::ExecutionMode::Sequential => "sequential",
            redsus_core::pipeline::ExecutionMode::Parallel => "parallel",
        };
        for stage in [
            PipelineStage::LabelConstruction,
            PipelineStage::FeatureEngineering,
        ] {
            report_metric(
                format!("stage_{label}/{}_{tag}_ms", stage.name()),
                run.report.wall_for(stage).unwrap().as_secs_f64() * 1e3,
                "ms",
            );
        }
        // Residency is schedule-invariant; record it once per preset.
        if engine.mode() == redsus_core::pipeline::ExecutionMode::Sequential {
            for stage in PipelineStage::ALL {
                let (entries, bytes) = run.report.residency_for(stage).unwrap();
                report_metric(
                    format!("stage_{label}/{}_peak_resident", stage.name()),
                    entries as f64,
                    "entries",
                );
                report_metric(
                    format!("stage_{label}/{}_approx_resident", stage.name()),
                    bytes as f64,
                    "bytes",
                );
            }
        }
    }
}

fn bench_labelfeat(c: &mut Criterion) {
    let tiny = SynthUs::generate(&SynthConfig::tiny(5));
    bench_preset(c, "tiny", &tiny);
    let experiment = SynthUs::generate(&SynthConfig::experiment(5));
    bench_preset(c, "experiment", &experiment);
}

criterion_group!(benches, bench_labelfeat);
criterion_main!(benches);
